"""Unit tests for the Forkbase-like immutable versioned store."""

import numpy as np
import pytest

from repro.datasets import Column, ColumnType, Table
from repro.pipeline import VersionedStore


def make_table(values):
    return Table([
        Column("x", ColumnType.CONTINUOUS, np.asarray(values, dtype=np.float64)),
    ])


def test_commit_and_checkout_roundtrip():
    store = VersionedStore()
    table = make_table([1.0, 2.0])
    commit = store.commit("main", table, "initial")
    assert store.checkout("main").equals(table)
    assert store.head("main").commit_id == commit.commit_id


def test_content_addressing_deduplicates():
    store = VersionedStore()
    c1 = store.commit("main", make_table([1.0]), "first")
    c2 = store.commit("other", make_table([1.0]), "same content")
    assert c1.version == c2.version
    assert c1.commit_id != c2.commit_id  # different commit metadata


def test_committed_data_is_immutable_against_caller_mutation():
    store = VersionedStore()
    table = make_table([1.0, 2.0])
    commit = store.commit("main", table, "snapshot")
    table.column("x").values[0] = 999.0  # mutate the caller's arrays
    assert store.get(commit.version).column("x").values[0] == 1.0


def test_checkout_returns_defensive_copy():
    store = VersionedStore()
    commit = store.commit("main", make_table([5.0]), "v1")
    out = store.checkout("main")
    out.column("x").values[0] = -1.0
    assert store.get(commit.version).column("x").values[0] == 5.0


def test_lineage_walk():
    store = VersionedStore()
    store.commit("main", make_table([1.0]), "v1")
    store.commit("main", make_table([2.0]), "v2")
    store.commit("main", make_table([3.0]), "v3")
    log = store.log("main")
    assert [c.message for c in log] == ["v3", "v2", "v1"]
    assert log[-1].parent is None


def test_fork_points_at_same_head():
    store = VersionedStore()
    store.commit("main", make_table([1.0]), "v1")
    store.fork("main", "experiment")
    assert store.head("experiment").version == store.head("main").version
    # Advancing the fork leaves main untouched.
    store.commit("experiment", make_table([2.0]), "v2")
    assert store.checkout("main").column("x").values[0] == 1.0


def test_fork_validation():
    store = VersionedStore()
    with pytest.raises(KeyError):
        store.fork("missing", "new")
    store.commit("main", make_table([1.0]), "v1")
    store.fork("main", "dup")
    with pytest.raises(ValueError):
        store.fork("main", "dup")


def test_unknown_branch_and_version_rejected():
    store = VersionedStore()
    with pytest.raises(KeyError):
        store.head("nope")
    with pytest.raises(KeyError):
        store.get("deadbeef")


def test_diff_versions():
    store = VersionedStore()
    c1 = store.commit("main", make_table([1.0, 2.0]), "v1")
    c2 = store.commit("main", make_table([1.0]), "v2")
    diff = store.diff_versions(c1.version, c2.version)
    assert diff["rows"] == (2, 1)
    assert not diff["identical"]


def test_branches_listing():
    store = VersionedStore()
    store.commit("b", make_table([1.0]), "x")
    store.commit("a", make_table([2.0]), "y")
    assert store.branches() == ["a", "b"]
