"""Integration tests for the GEMINI-style AnalyticsStack."""

import numpy as np
import pytest

from repro.core import GMRegularizer, L2Regularizer
from repro.datasets import make_raw_hospital_table
from repro.pipeline import AnalyticsStack, DataCleaner, DeduplicateRows


@pytest.fixture(scope="module")
def raw_and_labels():
    return make_raw_hospital_table(seed=0)


def make_stack(regularizer_factory, epochs=15):
    return AnalyticsStack(
        DataCleaner([DeduplicateRows(key="patient_id")]),
        regularizer_factory,
        epochs=epochs,
    )


def test_full_run_produces_all_artifacts(raw_and_labels):
    raw, labels = raw_and_labels
    stack = make_stack(lambda m: GMRegularizer(n_dimensions=m))
    result = stack.run(raw, labels, seed=0, drop_columns=["patient_id"])
    assert result.cleaning_report.total_rows_removed > 0
    assert {"raw", "cleaned"} <= set(result.commits)
    assert 0.5 < result.test_accuracy <= 1.0
    assert len(result.history.records) == 15
    assert any(s.name == "sex" for s in result.profile)
    assert not any(s.name == "patient_id" for s in result.profile)


def test_store_keeps_raw_and_cleaned_versions(raw_and_labels):
    raw, labels = raw_and_labels
    stack = make_stack(lambda m: None, epochs=2)
    result = stack.run(raw, labels, seed=0, drop_columns=["patient_id"])
    raw_version = result.commits["raw"]
    cleaned_version = result.commits["cleaned"]
    assert raw_version != cleaned_version
    assert stack.store.get(raw_version).n_rows == raw.n_rows
    assert stack.store.get(cleaned_version).n_rows == labels.size


def test_cleaning_restores_label_alignment(raw_and_labels):
    raw, labels = raw_and_labels
    stack = make_stack(lambda m: L2Regularizer(1.0), epochs=2)
    result = stack.run(raw, labels, seed=0, drop_columns=["patient_id"])
    # Model was trained on exactly the labelled prefix.
    n_train = int(round(0.8 * labels.size))
    assert abs(
        result.model.n_features
        - stack.store.get(result.commits["cleaned"]).n_columns
    ) < 400  # sanity: encoded width in the right ballpark
    del n_train


def test_too_aggressive_cleaning_rejected(raw_and_labels):
    raw, labels = raw_and_labels
    # A cleaner that drops almost everything cannot satisfy the labels.
    class DropMost:
        def apply(self, table):
            from repro.pipeline.cleaning import CleaningAction
            kept = table.head(10)
            return kept, CleaningAction("drop-most", "test", rows_removed=table.n_rows - 10)

    stack = AnalyticsStack(DataCleaner([DropMost()]), lambda m: None, epochs=1)
    with pytest.raises(ValueError):
        stack.run(raw, labels, seed=0)


def test_unknown_alignment_rejected(raw_and_labels):
    raw, labels = raw_and_labels
    stack = make_stack(lambda m: None, epochs=1)
    with pytest.raises(ValueError):
        stack.run(raw, labels, label_alignment="fuzzy")


def test_serve_publishes_and_answers_like_trained_model(raw_and_labels):
    raw, labels = raw_and_labels
    stack = make_stack(lambda m: L2Regularizer(1.0), epochs=2)
    result = stack.run(raw, labels, seed=0, drop_columns=["patient_id"])
    assert result.encoder is not None  # run() now exposes the fitted encoder

    with stack.serve(result, name="readmission", cache_size=0) as server:
        rows = np.random.default_rng(7).normal(
            size=(24, result.model.n_features)
        )
        served = np.array(server.predict_many(rows))
        assert np.array_equal(served, result.model.predict(rows))
        assert server.registry.active_version("readmission") == "v0001"
        meta = server.registry.metadata("readmission", "v0001")
        assert meta["test_accuracy"] == pytest.approx(result.test_accuracy)
        assert "cleaned" in meta["commits"]
