"""Unit tests for the DICE-like cleaning rules."""

import numpy as np
import pytest

from repro.datasets import Column, ColumnType, Table
from repro.pipeline import (
    DataCleaner,
    DeduplicateRows,
    DropHighMissingColumns,
    RangeRule,
    VocabularyRule,
)


@pytest.fixture
def dirty():
    return Table([
        Column("id", ColumnType.CATEGORICAL,
               np.asarray(["a", "b", "a", "c"], dtype=object)),
        Column("temp", ColumnType.CONTINUOUS,
               np.array([37.0, 41.0, 37.0, -9999.0])),
        Column("unit", ColumnType.CATEGORICAL,
               np.asarray(["icu", "ward", "icu", "basement"], dtype=object)),
    ])


def test_dedup_by_key_keeps_first(dirty):
    cleaned, action = DeduplicateRows(key="id").apply(dirty)
    assert cleaned.n_rows == 3
    assert action.rows_removed == 1
    assert cleaned.column("id").values.tolist() == ["a", "b", "c"]


def test_dedup_whole_row():
    table = Table([
        Column("x", ColumnType.CONTINUOUS, np.array([1.0, 1.0, 2.0])),
    ])
    cleaned, action = DeduplicateRows().apply(table)
    assert cleaned.n_rows == 2
    assert action.rows_removed == 1


def test_dedup_whole_row_treats_nan_as_equal():
    table = Table([
        Column("x", ColumnType.CONTINUOUS, np.array([np.nan, np.nan])),
    ])
    cleaned, _ = DeduplicateRows().apply(table)
    assert cleaned.n_rows == 1


def test_range_rule_nulls_outliers(dirty):
    cleaned, action = RangeRule(["temp"], low=30.0, high=43.0).apply(dirty)
    assert action.cells_changed == 1
    assert np.isnan(cleaned.column("temp").values[3])
    assert cleaned.column("temp").values[0] == 37.0


def test_range_rule_type_checked(dirty):
    with pytest.raises(TypeError):
        RangeRule(["id"], 0.0, 1.0).apply(dirty)


def test_range_rule_validates_bounds():
    with pytest.raises(ValueError):
        RangeRule(["temp"], low=2.0, high=1.0)


def test_vocabulary_rule(dirty):
    cleaned, action = VocabularyRule("unit", {"icu", "ward"}).apply(dirty)
    assert action.cells_changed == 1
    assert cleaned.column("unit").values[3] is None


def test_vocabulary_rule_type_checked(dirty):
    with pytest.raises(TypeError):
        VocabularyRule("temp", {"x"}).apply(dirty)


def test_drop_high_missing_columns():
    table = Table([
        Column("mostly_gone", ColumnType.CONTINUOUS,
               np.array([np.nan, np.nan, np.nan, 1.0])),
        Column("fine", ColumnType.CONTINUOUS, np.arange(4.0)),
    ])
    cleaned, action = DropHighMissingColumns(0.5).apply(table)
    assert cleaned.column_names == ["fine"]
    assert action.columns_removed == 1


def test_drop_high_missing_respects_protection():
    table = Table([
        Column("key", ColumnType.CATEGORICAL,
               np.asarray([None, None, None], dtype=object)),
    ])
    cleaned, _ = DropHighMissingColumns(0.5, protect={"key"}).apply(table)
    assert "key" in cleaned


def test_drop_everything_rejected():
    table = Table([
        Column("gone", ColumnType.CONTINUOUS, np.array([np.nan, np.nan])),
    ])
    with pytest.raises(ValueError):
        DropHighMissingColumns(0.5).apply(table)


def test_cleaner_chains_rules_and_reports(dirty):
    cleaner = DataCleaner([
        DeduplicateRows(key="id"),
        RangeRule(["temp"], 30.0, 43.0),
        VocabularyRule("unit", {"icu", "ward"}),
    ])
    cleaned, report = cleaner.clean(dirty)
    assert cleaned.n_rows == 3
    assert len(report.actions) == 3
    assert report.total_rows_removed == 1
    assert report.total_cells_changed == 2  # -9999 temp + basement unit
    assert "deduplicate" in report.summary()


def test_cleaner_requires_rules():
    with pytest.raises(ValueError):
        DataCleaner([])
