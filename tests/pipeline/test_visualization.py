"""Tests for the iDat-style text visualization stage."""

import numpy as np
import pytest

from repro.datasets import Column, ColumnType
from repro.pipeline import (
    CohortComparison,
    bar_chart,
    density_plot,
    histogram,
    render_cohorts,
)


def test_histogram_basic(rng):
    col = Column("age", ColumnType.CONTINUOUS, rng.normal(50, 10, 500))
    text = histogram(col, bins=5)
    assert "age" in text
    assert text.count("\n") == 5  # header + 5 bins
    assert "#" in text


def test_histogram_reports_missing():
    col = Column("x", ColumnType.CONTINUOUS, np.array([1.0, np.nan, 3.0]))
    assert "missing=1" in histogram(col, bins=2)


def test_histogram_empty_column():
    col = Column("x", ColumnType.CONTINUOUS, np.array([np.nan, np.nan]))
    assert "(no data)" in histogram(col)


def test_histogram_rejects_categorical():
    col = Column("c", ColumnType.CATEGORICAL, np.asarray(["a"], dtype=object))
    with pytest.raises(TypeError):
        histogram(col)


def test_bar_chart_scales_to_maximum():
    text = bar_chart({"a": 1.0, "b": 0.5}, width=10)
    lines = text.splitlines()
    assert lines[0].count("#") == 10
    assert lines[1].count("#") == 5


def test_bar_chart_empty_rejected():
    with pytest.raises(ValueError):
        bar_chart({})


def test_density_plot_marks_crossovers():
    grid = np.linspace(-2, 2, 101)
    density = np.exp(-grid**2)
    text = density_plot(grid, density, crossovers=np.array([1.0]), rows=11)
    assert text.count("A/B") == 2  # marked at +1 and -1
    assert "w=" in text


def test_density_plot_validates_shapes():
    with pytest.raises(ValueError):
        density_plot(np.zeros(3), np.zeros(4))


def test_render_cohorts():
    comparisons = [
        CohortComparison("young", 100, 0.2),
        CohortComparison("old", 50, 0.4),
    ]
    text = render_cohorts(comparisons)
    assert "young (n=100)" in text
    assert "0.400" in text


def test_render_cohorts_empty_rejected():
    with pytest.raises(ValueError):
        render_cohorts([])
