"""Unit tests for the epiC-like aggregation and CohAna-like cohorts."""

import numpy as np
import pytest

from repro.datasets import Column, ColumnType, Table
from repro.pipeline import (
    Aggregation,
    build_cohorts,
    compare_outcome,
    group_by,
    summarize,
)


@pytest.fixture
def visits():
    return Table([
        Column("ward", ColumnType.CATEGORICAL,
               np.asarray(["icu", "icu", "gen", "gen", "gen"], dtype=object)),
        Column("los", ColumnType.CONTINUOUS,
               np.array([10.0, 6.0, 2.0, 4.0, np.nan])),
        Column("age", ColumnType.CONTINUOUS,
               np.array([70.0, 50.0, 30.0, 60.0, 40.0])),
    ])


def test_group_by_mean_and_count(visits):
    out = group_by(visits, ["ward"], [
        Aggregation("los", "mean"),
        Aggregation("los", "count", alias="visits"),
    ])
    assert out.n_rows == 2
    wards = out.column("ward").values.tolist()
    means = out.column("mean(los)").values
    icu = wards.index("icu")
    gen = wards.index("gen")
    assert means[icu] == pytest.approx(8.0)
    assert means[gen] == pytest.approx(3.0)  # NaN ignored by nanmean
    assert out.column("visits").values[gen] == 3.0


def test_group_by_multiple_aggregations(visits):
    out = group_by(visits, ["ward"], [
        Aggregation("age", "min"),
        Aggregation("age", "max"),
        Aggregation("age", "sum"),
    ])
    icu = out.column("ward").values.tolist().index("icu")
    assert out.column("min(age)").values[icu] == 50.0
    assert out.column("max(age)").values[icu] == 70.0
    assert out.column("sum(age)").values[icu] == 120.0


def test_group_by_preserves_first_appearance_order(visits):
    out = group_by(visits, ["ward"], [Aggregation("age", "mean")])
    assert out.column("ward").values.tolist() == ["icu", "gen"]


def test_group_by_validation(visits):
    with pytest.raises(ValueError):
        group_by(visits, [], [Aggregation("age", "mean")])
    with pytest.raises(ValueError):
        group_by(visits, ["ward"], [])
    with pytest.raises(TypeError):
        group_by(visits, ["ward"], [Aggregation("ward", "mean")])
    with pytest.raises(ValueError):
        Aggregation("age", "median")


def test_summarize_profiles_all_columns(visits):
    profile = {s.name: s for s in summarize(visits)}
    assert profile["ward"].n_distinct == 2
    assert profile["los"].n_missing == 1
    assert profile["los"].mean == pytest.approx(5.5)
    assert profile["age"].minimum == 30.0
    assert profile["ward"].mean is None


def test_categorical_cohorts(visits):
    cohorts = {c.name: c for c in build_cohorts(visits, "ward")}
    assert set(cohorts) == {"icu", "gen"}
    assert cohorts["icu"].size == 2


def test_missing_values_form_their_own_cohort():
    table = Table([
        Column("sex", ColumnType.CATEGORICAL,
               np.asarray(["m", None, "f"], dtype=object)),
    ])
    names = {c.name for c in build_cohorts(table, "sex")}
    assert "<missing>" in names


def test_continuous_cohorts_bucketed(visits):
    cohorts = build_cohorts(visits, "age", thresholds=[45.0])
    assert len(cohorts) == 2
    assert cohorts[0].size == 2  # ages 30, 40
    assert cohorts[1].size == 3


def test_cohort_validation(visits):
    with pytest.raises(ValueError):
        build_cohorts(visits, "age")  # missing thresholds
    with pytest.raises(ValueError):
        build_cohorts(visits, "ward", thresholds=[1.0])


def test_compare_outcome_rates(visits):
    cohorts = build_cohorts(visits, "ward")
    outcome = np.array([1, 1, 0, 1, 0])
    rates = {c.cohort: c.outcome_rate for c in compare_outcome(cohorts, outcome)}
    assert rates["icu"] == pytest.approx(1.0)
    assert rates["gen"] == pytest.approx(1.0 / 3.0)


def test_compare_outcome_bounds_checked(visits):
    cohorts = build_cohorts(visits, "ward")
    with pytest.raises(IndexError):
        compare_outcome(cohorts, np.array([1, 0]))
