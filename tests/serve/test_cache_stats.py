"""PredictionCache accounting stays exact under concurrent traffic."""

import threading

import numpy as np
import pytest

from repro.serve import PredictionCache


def _key(i, version="v1"):
    return PredictionCache.make_key(
        "predict", version, np.asarray([float(i)])
    )


# ----------------------------------------------------------------------
# Exactness under concurrency
# ----------------------------------------------------------------------
def test_counts_exact_under_concurrent_gets_and_puts():
    cache = PredictionCache(maxsize=64)
    n_threads, n_ops = 8, 500
    barrier = threading.Barrier(n_threads)

    def worker(tid):
        barrier.wait()
        for i in range(n_ops):
            key = _key((tid * n_ops + i) % 96)
            hit, _value = cache.get(key)
            if not hit:
                cache.put(key, float(i))

    threads = [
        threading.Thread(target=worker, args=(tid,))
        for tid in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == n_threads * n_ops
    assert stats["inserts"] - stats["evictions"] == stats["size"]
    assert stats["hit_rate"] == pytest.approx(
        stats["hits"] / (n_threads * n_ops)
    )


def test_snapshot_invariants_hold_while_traffic_runs():
    """Every stats() snapshot is internally consistent mid-churn.

    This pins the satellite fix: ``hit_rate`` (and ``stats()``) read
    hits/misses together under the entry lock, so no snapshot can pair
    a fresh ``hits`` with a stale ``misses`` and report an impossible
    rate.
    """
    cache = PredictionCache(maxsize=16)
    stop = threading.Event()

    def churn():
        i = 0
        while not stop.is_set():
            key = _key(i % 40)
            hit, _value = cache.get(key)
            if not hit:
                cache.put(key, i)
            i += 1

    threads = [threading.Thread(target=churn) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(300):
            stats = cache.stats()
            assert 0.0 <= stats["hit_rate"] <= 1.0
            assert stats["inserts"] - stats["evictions"] == stats["size"]
            assert 0 <= stats["size"] <= stats["maxsize"]
            rate = cache.hit_rate
            assert 0.0 <= rate <= 1.0
            repr(cache)  # must not race either
    finally:
        stop.set()
        for thread in threads:
            thread.join()


# ----------------------------------------------------------------------
# hit_rate / __repr__ agree with the locked snapshot
# ----------------------------------------------------------------------
def test_hit_rate_matches_stats_snapshot():
    cache = PredictionCache(maxsize=8)
    cache.put(_key(1), 1.0)
    for _ in range(3):
        cache.get(_key(1))
    cache.get(_key(2))
    stats = cache.stats()
    assert cache.hit_rate == stats["hit_rate"] == 0.75
    assert "hits=3" in repr(cache)
    assert "misses=1" in repr(cache)


def test_hit_rate_zero_before_any_lookup():
    assert PredictionCache(maxsize=4).hit_rate == 0.0
