"""Checkpoint round-trips and hot-swap behavior of the model registry."""

import threading

import numpy as np
import pytest

from repro.linear.logistic import LogisticRegression
from repro.nn import Network
from repro.nn.layers import Dense, ReLU
from repro.serve import CheckpointIncompatible, ModelRegistry


def make_linear(seed=0, d=8):
    return LogisticRegression(d, rng=np.random.default_rng(seed))


def make_mlp(seed=0, d=6, hidden=5):
    rng = np.random.default_rng(seed)
    return Network([
        Dense("fc1", d, hidden, rng=rng),
        ReLU("r"),
        Dense("fc2", hidden, 3, rng=rng),
    ])


@pytest.fixture
def x():
    return np.random.default_rng(42).normal(size=(16, 8))


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------
def test_linear_roundtrip_in_memory(x):
    registry = ModelRegistry()
    registry.register("lin", lambda: make_linear(seed=99))
    model = make_linear(seed=1)
    version = registry.publish("lin", model)
    assert version == "v0001"
    reloaded = registry.load("lin", version)
    assert np.array_equal(reloaded.weights, model.weights)
    assert np.array_equal(reloaded.bias, model.bias)
    assert np.array_equal(reloaded.predict_proba(x), model.predict_proba(x))


def test_deep_roundtrip_on_disk(tmp_path):
    registry = ModelRegistry(str(tmp_path / "models"))
    registry.register("mlp", lambda: make_mlp(seed=99))
    model = make_mlp(seed=3)
    version = registry.publish("mlp", model)
    reloaded = registry.load("mlp", version)
    data = np.random.default_rng(0).normal(size=(4, 6))
    assert np.array_equal(
        reloaded.forward(data, training=False),
        model.forward(data, training=False),
    )
    # Checkpoints survive a fresh registry over the same directory.
    fresh = ModelRegistry(str(tmp_path / "models"))
    fresh.register("mlp", lambda: make_mlp(seed=123))
    again = fresh.load("mlp", version)
    assert np.array_equal(
        again.forward(data, training=False), model.forward(data, training=False)
    )


def test_published_state_is_snapshotted(x):
    registry = ModelRegistry()
    registry.register("lin", lambda: make_linear())
    model = make_linear(seed=1)
    version = registry.publish("lin", model)
    before = model.weights.copy()
    model.weights += 1.0  # keep training after publishing
    assert np.array_equal(registry.load("lin", version).weights, before)


def test_logistic_is_self_describing_without_factory(tmp_path):
    # Publish in one process/registry, load in another with no factory:
    # the metadata records model_kind/n_features.
    root = str(tmp_path / "models")
    model = make_linear(seed=5)
    ModelRegistry(root).publish("lin", model)
    fresh = ModelRegistry(root)
    active = fresh.active("lin")
    assert active.version == "v0001"
    assert np.array_equal(active.model.weights, model.weights)


# ----------------------------------------------------------------------
# Versioning and activation
# ----------------------------------------------------------------------
def test_versions_accumulate_and_activate_picks_one(x):
    registry = ModelRegistry()
    registry.register("lin", lambda: make_linear())
    m1, m2 = make_linear(seed=1), make_linear(seed=2)
    v1 = registry.publish("lin", m1)
    v2 = registry.publish("lin", m2)
    assert registry.versions("lin") == [v1, v2] == ["v0001", "v0002"]
    assert registry.active_version("lin") == v2
    registry.activate("lin", v1)  # roll back
    assert registry.active_version("lin") == v1
    assert np.array_equal(registry.active("lin").model.weights, m1.weights)


def test_publish_without_activate_keeps_current_live():
    registry = ModelRegistry()
    registry.register("lin", lambda: make_linear())
    v1 = registry.publish("lin", make_linear(seed=1))
    registry.publish("lin", make_linear(seed=2), activate=False)
    assert registry.active_version("lin") == v1


def test_metadata_records_shapes_and_extras():
    registry = ModelRegistry()
    registry.register("lin", lambda: make_linear())
    version = registry.publish(
        "lin", make_linear(), metadata={"test_accuracy": 0.9}
    )
    meta = registry.metadata("lin", version)
    assert meta["parameters"]["weights"] == [8]
    assert meta["n_parameters"] == 9
    assert meta["test_accuracy"] == 0.9
    assert meta["model_kind"] == "logistic"


def test_unknown_version_and_name_raise():
    registry = ModelRegistry()
    registry.register("lin", lambda: make_linear())
    with pytest.raises(KeyError):
        registry.load("lin")  # nothing published yet
    registry.publish("lin", make_linear())
    with pytest.raises(KeyError):
        registry.load("lin", "v0666")
    with pytest.raises(KeyError):
        registry.activate("lin", "v0666")
    with pytest.raises(KeyError):
        registry.active("ghost")


# ----------------------------------------------------------------------
# Compatibility checking (LoadReport-based)
# ----------------------------------------------------------------------
def test_incompatible_architecture_names_keys():
    registry = ModelRegistry()
    registry.publish("mlp", make_mlp(seed=1))
    registry.register("mlp", lambda: make_linear())  # wrong architecture
    with pytest.raises(CheckpointIncompatible) as excinfo:
        registry.load("mlp", "v0001")
    report = excinfo.value.report
    assert "weights" in report.missing
    assert "fc1/weight" in report.unexpected
    assert "fc1/weight" in str(excinfo.value)


def test_allow_partial_loads_intersection():
    registry = ModelRegistry()
    registry.publish("mlp", make_mlp(seed=1))
    registry.register("mlp", lambda: make_linear())
    model = registry.load("mlp", "v0001", allow_partial=True)
    assert isinstance(model, LogisticRegression)  # nothing matched, no error


# ----------------------------------------------------------------------
# Hot-swap under concurrent readers
# ----------------------------------------------------------------------
def test_hot_swap_with_concurrent_readers():
    d = 8
    registry = ModelRegistry()
    registry.register("lin", lambda: LogisticRegression(d, weight_init_std=0.0))
    m1, m2 = make_linear(seed=1, d=d), make_linear(seed=2, d=d)
    registry.publish("lin", m1)

    data = np.random.default_rng(0).normal(size=(4, d))
    p1, p2 = m1.predict_proba(data), m2.predict_proba(data)
    assert not np.allclose(p1, p2)  # the swap must be observable

    swapped = threading.Event()
    consistent = threading.Event()
    consistent.set()

    def reader():
        while not swapped.is_set() or not registry.active("lin").version == "v0002":
            active = registry.active("lin")
            probs = active.model.predict_proba(data)
            # Every read sees a *whole* version: its predictions match
            # exactly one of the two published models.
            if not (np.array_equal(probs, p1) or np.array_equal(probs, p2)):
                consistent.clear()
                return
        # After the swap is visible, it must stay v0002.
        if not np.array_equal(
            registry.active("lin").model.predict_proba(data), p2
        ):
            consistent.clear()

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    registry.publish("lin", m2)  # atomic hot-swap to v0002
    swapped.set()
    for thread in threads:
        thread.join(timeout=10.0)
        assert not thread.is_alive()
    assert consistent.is_set()
    assert registry.active_version("lin") == "v0002"
