"""Consistent-hash ring: determinism, bounded movement, failover."""

import numpy as np
import pytest

from repro.serve.sharding import ConsistentHashRing, routing_key


def _keys(n, seed=3):
    rng = np.random.default_rng(seed)
    return [rng.bytes(16) for _ in range(n)]


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_fixed_seed_gives_stable_assignment():
    keys = _keys(500)
    a = ConsistentHashRing(4, seed=2018).assignment(keys)
    b = ConsistentHashRing(4, seed=2018).assignment(keys)
    assert a == b


def test_different_seed_gives_different_layout():
    keys = _keys(500)
    a = ConsistentHashRing(4, seed=2018).assignment(keys)
    b = ConsistentHashRing(4, seed=2019).assignment(keys)
    assert a != b


def test_routing_key_is_content_addressed_and_version_free():
    row = np.arange(6, dtype=np.float64)
    k1 = routing_key("predict", row.tobytes())
    k2 = routing_key("predict", row.tobytes())
    k3 = routing_key("predict_proba", row.tobytes())
    k4 = routing_key("predict", row[::-1].copy().tobytes())
    assert k1 == k2
    assert k1 != k3
    assert k1 != k4


def test_all_shards_receive_traffic():
    keys = _keys(2000)
    counts = np.bincount(
        ConsistentHashRing(4).assignment(keys), minlength=4
    )
    assert (counts > 0).all()
    # 64 virtual points per shard keep imbalance moderate.
    assert counts.max() / counts.min() < 3.0


# ----------------------------------------------------------------------
# Bounded key movement
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_before,n_after", [(2, 3), (4, 5), (4, 8)])
def test_resize_moves_less_than_two_over_n(n_before, n_after):
    keys = _keys(2000)
    before = ConsistentHashRing(n_before).assignment(keys)
    after = ConsistentHashRing(n_after).assignment(keys)
    moved = sum(1 for a, b in zip(before, after) if a != b)
    # Consistent hashing bounds expected movement to ~1 - before/after of
    # the keyspace; assert the looser 2/N acceptance bound relative to
    # the *larger* ring.
    n = max(n_before, n_after)
    expected_fraction = 1.0 - min(n_before, n_after) / n
    assert moved / len(keys) < max(2.0 / n, 1.5 * expected_fraction)


def test_keys_on_surviving_shards_do_not_move_on_death():
    ring = ConsistentHashRing(4)
    keys = _keys(1000)
    healthy = ring.assignment(keys)
    alive = [True, True, False, True]
    for key, owner in zip(keys, healthy):
        rerouted = ring.route(key, alive=alive)
        if owner != 2:
            assert rerouted == owner  # survivors keep their keys
        else:
            assert rerouted != 2
            assert alive[rerouted]


def test_all_dead_falls_back_to_primary_owner():
    ring = ConsistentHashRing(3)
    key = _keys(1)[0]
    assert ring.route(key, alive=[False, False, False]) == ring.route(key)


def test_validation():
    with pytest.raises(ValueError):
        ConsistentHashRing(0)
    with pytest.raises(ValueError):
        ConsistentHashRing(2, replicas=0)
