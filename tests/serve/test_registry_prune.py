"""ModelRegistry.prune: bounded history that never eats the safety net."""

import os

import numpy as np
import pytest

from repro.linear.logistic import LogisticRegression
from repro.serve import ModelRegistry

NAME = "pruned-model"
D = 6


def make_model(seed=0):
    return LogisticRegression(D, rng=np.random.default_rng(seed))


def make_registry(root=None, publishes=0, activate_first=False):
    registry = ModelRegistry(root=root)
    registry.register(NAME, lambda: LogisticRegression(D, weight_init_std=0.0))
    versions = []
    for i in range(publishes):
        versions.append(
            registry.publish(
                NAME, make_model(seed=i), activate=(i == 0 and activate_first)
            )
        )
    return registry, versions


class TestPruneMemoryBackend:
    def test_keeps_newest_and_active(self):
        registry, versions = make_registry(publishes=6, activate_first=True)
        removed = registry.prune(NAME, keep_last=2)
        # v0001 is active (protected); of the 5 prunable, the oldest 3 go.
        assert removed == ["v0002", "v0003", "v0004"]
        assert registry.versions(NAME) == ["v0001", "v0005", "v0006"]
        # Survivors still load.
        for version in registry.versions(NAME):
            assert registry.load(NAME, version) is not None

    def test_removed_versions_no_longer_load(self):
        registry, _ = make_registry(publishes=5, activate_first=True)
        removed = registry.prune(NAME, keep_last=1)
        assert removed
        with pytest.raises(Exception):
            registry.load(NAME, removed[0])

    def test_protects_last_known_good(self):
        registry, versions = make_registry(publishes=5, activate_first=True)
        registry.activate(NAME, versions[2])  # v0001 becomes last-known-good
        assert registry.last_known_good(NAME) == versions[0]
        removed = registry.prune(NAME, keep_last=1)
        survivors = registry.versions(NAME)
        assert versions[0] in survivors  # last-known-good kept
        assert versions[2] in survivors  # active kept
        assert versions[-1] in survivors  # newest kept
        assert versions[1] in removed and versions[3] in removed

    def test_protect_argument(self):
        registry, versions = make_registry(publishes=4)
        removed = registry.prune(NAME, keep_last=1, protect=[versions[0]])
        assert versions[0] not in removed
        assert registry.versions(NAME) == [versions[0], versions[-1]]

    def test_noop_when_under_budget(self):
        registry, _ = make_registry(publishes=3)
        assert registry.prune(NAME, keep_last=3) == []
        assert len(registry.versions(NAME)) == 3

    def test_keep_last_validation(self):
        registry, _ = make_registry(publishes=2)
        with pytest.raises(ValueError, match="keep_last"):
            registry.prune(NAME, keep_last=0)

    def test_version_numbering_continues_after_prune(self):
        """Pruning never recycles version names."""
        registry, _ = make_registry(publishes=4, activate_first=True)
        registry.prune(NAME, keep_last=1)
        assert registry.versions(NAME) == ["v0001", "v0004"]
        fresh = registry.publish(NAME, make_model(seed=9))
        assert fresh == "v0005"

    def test_continuous_publishing_stays_bounded(self):
        """The loop's publish/prune cadence keeps history size constant."""
        registry, _ = make_registry(publishes=1, activate_first=True)
        for i in range(20):
            registry.publish(NAME, make_model(seed=i), activate=False)
            registry.prune(NAME, keep_last=3)
            assert len(registry.versions(NAME)) <= 4  # 3 + protected active
        assert registry.active_version(NAME) == "v0001"


class TestPruneDiskBackend:
    def test_prune_removes_files(self, tmp_path):
        registry, versions = make_registry(
            root=str(tmp_path), publishes=5, activate_first=True
        )
        model_dir = os.path.join(str(tmp_path), NAME)
        before = {f for f in os.listdir(model_dir) if f.endswith(".npz")}
        assert len(before) == 5
        removed = registry.prune(NAME, keep_last=1)
        assert removed == ["v0002", "v0003", "v0004"]
        after = {f for f in os.listdir(model_dir) if f.endswith(".npz")}
        assert after == {"v0001.npz", "v0005.npz"}
        for version in removed:
            assert not os.path.exists(
                os.path.join(model_dir, version + ".meta.json")
            )

    def test_disk_registry_reload_sees_pruned_manifest(self, tmp_path):
        registry, _ = make_registry(
            root=str(tmp_path), publishes=4, activate_first=True
        )
        registry.prune(NAME, keep_last=1)
        reopened = ModelRegistry(root=str(tmp_path))
        reopened.register(
            NAME, lambda: LogisticRegression(D, weight_init_std=0.0)
        )
        assert reopened.versions(NAME) == ["v0001", "v0004"]
        assert reopened.publish(NAME, make_model()) == "v0005"
