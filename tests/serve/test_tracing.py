"""End-to-end tracing through the serving stack.

Covers the two contracts the tracing tentpole exists for:

- **cross-thread propagation** — the trace context captured on the
  submitting thread is restored on the batcher's dispatch worker, so a
  request and the batch dispatch that served it share one trace id with
  correct parentage;
- **chaos narrative** — a request that experiences registry retries and
  a stale-snapshot fallback yields one trace, reconstructable from the
  JSONL log by trace id, carrying those occurrences as span events, and
  ``summarize`` renders its critical path.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.linear.logistic import LogisticRegression
from repro.serve import (
    CircuitBreaker,
    FaultInjector,
    FaultProfile,
    ModelRegistry,
    ModelServer,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.telemetry.summarize import (
    critical_path,
    format_trace_tree,
    summarize_spans,
)
from repro.telemetry.trace import (
    JsonlSpanExporter,
    Tracer,
    load_spans,
    spans_by_trace,
)

D = 12


@pytest.fixture
def model():
    return LogisticRegression(D, rng=np.random.default_rng(0))


@pytest.fixture
def x():
    return np.random.default_rng(1).normal(size=(64, D))


def by_name(spans):
    table = {}
    for span in spans:
        table.setdefault(span["name"], []).append(span)
    return table


# ----------------------------------------------------------------------
# Cross-thread propagation
# ----------------------------------------------------------------------
def test_request_and_dispatch_share_one_trace(model, x):
    tracer = Tracer(sample_rate=1.0)
    with ModelServer(model=model, cache_size=0, tracer=tracer) as server:
        server.predict(x[0])
    spans = by_name(tracer.buffer.spans())

    request = spans["serve/request"][0]
    dispatch = spans["serve/dispatch"][0]
    # One trace id across the submit thread and the dispatch worker.
    assert request["parent_id"] is None
    assert dispatch["trace_id"] == request["trace_id"]
    assert dispatch["parent_id"] == request["span_id"]
    assert request["attributes"]["method"] == "predict"
    assert dispatch["attributes"]["batch_size"] == 1


def test_concurrent_requests_get_distinct_traces(model, x):
    tracer = Tracer(sample_rate=1.0)
    with ModelServer(
        model=model, cache_size=0, max_batch_size=8, tracer=tracer
    ) as server:
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(server.predict, x[:16]))
    spans = by_name(tracer.buffer.spans())

    requests = spans["serve/request"]
    assert len(requests) == 16
    # Each request is its own root trace with the seeded prefix.
    trace_ids = {s["trace_id"] for s in requests}
    assert len(trace_ids) == 16
    assert all(t.startswith("af7a89") for t in trace_ids)
    # Every dispatch parents onto the request that headed its batch.
    request_spans = {s["span_id"]: s for s in requests}
    for dispatch in spans["serve/dispatch"]:
        head = request_spans[dispatch["parent_id"]]
        assert dispatch["trace_id"] == head["trace_id"]


def test_cache_hit_is_an_event_on_the_request_span(model, x):
    tracer = Tracer(sample_rate=1.0)
    with ModelServer(model=model, cache_size=64, tracer=tracer) as server:
        server.predict(x[0])
        server.predict(x[0])  # identical row: served from cache
    requests = by_name(tracer.buffer.spans())["serve/request"]
    events = [[e["name"] for e in r["events"]] for r in requests]
    assert any("cache_miss" in names for names in events)
    assert any("cache_hit" in names for names in events)


def test_unsampled_requests_export_nothing(model, x):
    tracer = Tracer(sample_rate=0.0)
    with ModelServer(model=model, cache_size=0, tracer=tracer) as server:
        server.predict(x[0])
    assert len(tracer.buffer) == 0
    assert tracer.started > 0  # spans were created, payload dropped


def test_untraced_server_works_identically(model, x):
    with ModelServer(model=model, cache_size=0) as server:
        direct = server.predict(x[0])
    assert direct == model.predict(x[:1])[0]


# ----------------------------------------------------------------------
# Chaos narrative: retry + stale fallback in one trace
# ----------------------------------------------------------------------
def test_chaos_retry_and_stale_fallback_reconstructable(tmp_path, model, x):
    path = tmp_path / "spans.jsonl"
    exporter = JsonlSpanExporter(path=str(path))
    tracer = Tracer(exporter=exporter, sample_rate=1.0)

    registry = ModelRegistry()
    registry.register(
        "m", lambda: LogisticRegression(D, weight_init_std=0.0)
    )
    registry.publish("m", model)

    injector = FaultInjector(seed=2018)  # benign until told otherwise
    resilience = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0,
                          seed=0),
        registry_breaker=CircuitBreaker(
            name="registry", min_calls=100, reset_timeout=0.1
        ),
    )
    with ModelServer(
        registry=registry,
        name="m",
        cache_size=0,
        resilience=resilience,
        fault_injector=injector,
        tracer=tracer,
    ) as server:
        server.predict(x[0])  # warm the last-known-good snapshot
        # Registry goes fully dark: every load fails, retries exhaust,
        # the stale snapshot answers.
        injector.profiles["registry"] = FaultProfile(error_rate=1.0)
        answer = server.predict(x[1])
    exporter.close()

    assert answer == model.predict(x[1:2])[0]  # stale == correct here

    spans = load_spans(str(path))
    traces = spans_by_trace(spans)
    # Find the (single) trace that tells the whole chaos story.
    story = None
    for trace_id, trace_spans in traces.items():
        events = [e["name"] for s in trace_spans for e in s["events"]]
        if "retry" in events and "stale_model_served" in events:
            assert story is None, "chaos events leaked across traces"
            story = (trace_id, trace_spans, events)
    assert story is not None, "no trace carries retry + stale fallback"
    trace_id, trace_spans, events = story

    assert "fault_injected" in events
    assert "retry_exhausted" in events
    stale = next(
        e for s in trace_spans for e in s["events"]
        if e["name"] == "stale_model_served"
    )
    assert stale["version"] == "v0001"

    # The summarizer renders this trace's critical path.
    path_spans = critical_path(spans, trace_id)
    assert path_spans[0]["name"] == "serve/request"
    tree = format_trace_tree(spans, trace_id)
    assert trace_id in tree
    assert "*" in tree
    assert "stale_model_served" in tree
    assert "retry" in tree

    # And the per-op table aggregates across all traces in the log.
    table = {row["name"]: row for row in summarize_spans(spans)}
    assert table["serve/request"]["count"] == 2
    assert table["serve/request"]["total_seconds"] > 0.0


def test_breaker_transition_becomes_span_event(model, x):
    tracer = Tracer(sample_rate=1.0)
    registry = ModelRegistry()
    registry.register(
        "m", lambda: LogisticRegression(D, weight_init_std=0.0)
    )
    registry.publish("m", model)
    injector = FaultInjector(seed=2018)
    resilience = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=1, base_delay=0.0, max_delay=0.0,
                          seed=0),
        registry_breaker=CircuitBreaker(
            name="registry", window=4, min_calls=2,
            failure_threshold=0.5, reset_timeout=60.0,
        ),
    )
    with ModelServer(
        registry=registry,
        name="m",
        cache_size=0,
        resilience=resilience,
        fault_injector=injector,
        tracer=tracer,
    ) as server:
        server.predict(x[0])
        injector.profiles["registry"] = FaultProfile(error_rate=1.0)
        for i in range(1, 6):
            server.predict(x[i])

    events = [
        e["name"]
        for s in tracer.buffer.spans()
        for e in s["events"]
    ]
    assert "breaker_transition" in events
    # Once open, requests fall back via the breaker-open path.
    stale_reasons = {
        e.get("reason")
        for s in tracer.buffer.spans()
        for e in s["events"]
        if e["name"] == "stale_model_served"
    }
    assert "breaker_open" in stale_reasons
