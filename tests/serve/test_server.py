"""Micro-batching equivalence, caching, backpressure and lifecycle."""

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.linear.logistic import LogisticRegression
from repro.serve import MicroBatcher, ModelRegistry, ModelServer, PredictionCache

D = 12


@pytest.fixture
def model():
    return LogisticRegression(D, rng=np.random.default_rng(0))


@pytest.fixture
def x():
    return np.random.default_rng(1).normal(size=(96, D))


class SlowModel:
    """Wraps a model with a per-call delay to force queue build-up."""

    def __init__(self, inner, delay=0.01):
        self.inner = inner
        self.delay = delay
        self.calls = 0

    def predict(self, batch):
        self.calls += 1
        time.sleep(self.delay)
        return self.inner.predict(batch)


# ----------------------------------------------------------------------
# Batching equivalence
# ----------------------------------------------------------------------
def test_microbatched_predictions_bit_identical(model, x):
    """Coalesced labels must equal per-request labels bit for bit."""
    per_request = np.array([model.predict(row)[0] for row in x])
    with ModelServer(model=model, max_batch_size=16, cache_size=0) as server:
        batched = np.array(server.predict_many(x))
        assert server.stats()["mean_batch_size"] > 1.0  # really coalesced
    assert batched.dtype == per_request.dtype
    assert np.array_equal(batched, per_request)


def test_microbatched_probabilities_match_per_request(model, x):
    # Probabilities agree to reduction-order precision (the batch shape
    # changes the BLAS summation order, so bitwise equality is not
    # guaranteed — labels are covered by the bit-identical test above).
    per_request = np.array([model.predict_proba(row)[0] for row in x])
    with ModelServer(model=model, max_batch_size=16, cache_size=0) as server:
        batched = np.array(server.predict_many(x, method="predict_proba"))
    np.testing.assert_allclose(batched, per_request, rtol=0.0, atol=1e-12)


def test_concurrent_single_requests_equivalent(model, x):
    expected = model.predict(x)
    with ModelServer(model=model, max_batch_size=8) as server:
        with ThreadPoolExecutor(max_workers=12) as pool:
            got = np.array(list(pool.map(server.predict, x)))
    assert np.array_equal(got, expected)


def test_single_row_accepts_1d_and_1xn(model, x):
    with ModelServer(model=model) as server:
        a = server.predict(x[0])
        b = server.predict(x[0][np.newaxis, :])
        assert a == b == model.predict(x[:1])[0]
        score = server.decision_function(x[0])
        assert np.isclose(score, model.decision_function(x[:1])[0])


def test_mixed_methods_route_correctly(model, x):
    with ModelServer(model=model, cache_size=0) as server:
        with ThreadPoolExecutor(max_workers=8) as pool:
            labels = pool.map(server.predict, x[:20])
            probas = pool.map(server.predict_proba, x[:20])
            labels, probas = np.array(list(labels)), np.array(list(probas))
    assert np.array_equal(labels, model.predict(x[:20]))
    np.testing.assert_allclose(
        probas, model.predict_proba(x[:20]), rtol=0.0, atol=1e-12
    )


def test_unsupported_method_rejected(model, x):
    with ModelServer(model=model) as server:
        with pytest.raises(ValueError):
            server.request("decision_boundary", x[0])


# ----------------------------------------------------------------------
# Prediction cache
# ----------------------------------------------------------------------
def test_cache_hits_and_counters(model, x):
    with ModelServer(model=model) as server:
        first = server.predict(x[0])
        second = server.predict(x[0])
        assert first == second
        counters = server.stats()["metrics"]["counters"]
        assert counters["serve/cache_hits_total"] == 1
        assert counters["serve/cache_misses_total"] == 1
        assert counters["serve/requests_total"] == 2
        # A different method misses: the method is part of the key.
        server.predict_proba(x[0])
        counters = server.stats()["metrics"]["counters"]
        assert counters["serve/cache_misses_total"] == 2


def test_cache_lru_eviction():
    cache = PredictionCache(maxsize=2)
    keys = [
        PredictionCache.make_key("predict", "v1", np.array([float(i)]))
        for i in range(3)
    ]
    cache.put(keys[0], 0)
    cache.put(keys[1], 1)
    assert cache.get(keys[0]) == (True, 0)  # refresh 0; 1 is now LRU
    cache.put(keys[2], 2)
    assert cache.get(keys[1]) == (False, None)
    assert cache.get(keys[0]) == (True, 0)
    assert len(cache) == 2


def test_hot_swap_invalidates_cache_by_key():
    registry = ModelRegistry()
    registry.register("m", lambda: LogisticRegression(D, weight_init_std=0.0))
    m1 = LogisticRegression(D, rng=np.random.default_rng(3))
    m2 = LogisticRegression(D, rng=np.random.default_rng(4))
    registry.publish("m", m1)
    row = np.random.default_rng(5).normal(size=D)
    with ModelServer(registry=registry, name="m") as server:
        before = server.predict_proba(row)
        assert np.isclose(before, m1.predict_proba(row)[0])
        registry.publish("m", m2)  # hot-swap; old cache entries unreachable
        after = server.predict_proba(row)
        assert np.isclose(after, m2.predict_proba(row)[0])


# ----------------------------------------------------------------------
# Backpressure, deadlines, degradation
# ----------------------------------------------------------------------
def test_saturation_sheds_without_errors(model, x):
    slow = SlowModel(model, delay=0.02)
    server = ModelServer(
        model=slow, max_batch_size=4, max_queue=4, workers=1,
        batch_timeout=0.0, cache_size=0,
    )
    expected = model.predict(x)
    with server:
        with ThreadPoolExecutor(max_workers=24) as pool:
            got = np.array(list(pool.map(server.predict, x)))
    stats = server.stats()
    # Graceful degradation: every request answered, correctly, while the
    # bounded queue shed overflow to the inline path.
    assert np.array_equal(got, expected)
    assert stats["shed"] > 0
    assert stats["requests"] == len(x)


def test_queue_bound_is_respected():
    calls = []

    def dispatch(method, rows):
        calls.append(len(rows))
        return [0] * len(rows)

    from repro.serve.batching import ServeRequest

    batcher = MicroBatcher(
        dispatch, max_batch_size=4, batch_timeout=0.0, max_queue=3, workers=1
    )
    # A burst larger than the bound is only accepted up to the bound.
    requests = [ServeRequest("predict", np.zeros(1), 0.0) for _ in range(10)]
    accepted = batcher.submit_many(requests)
    assert accepted == 3
    for request in requests[:accepted]:
        request.event.wait(timeout=5.0)
    batcher.close()


def test_deadline_expiry_degrades_to_inline(model, x):
    slow = SlowModel(model, delay=0.05)
    server = ModelServer(
        model=slow, max_batch_size=2, max_queue=64, workers=1,
        batch_timeout=0.0, cache_size=0,
    )
    expected = model.predict(x[:12])
    with server:
        with ThreadPoolExecutor(max_workers=12) as pool:
            got = np.array(
                list(pool.map(lambda row: server.predict(row, deadline=0.01),
                              x[:12]))
            )
    stats = server.stats()
    assert np.array_equal(got, expected)  # deadlines never cost correctness
    assert stats["deadline_expired"] > 0


def test_dispatch_errors_propagate_to_callers(x):
    class Exploding:
        def predict(self, batch):
            raise RuntimeError("kaboom")

    with ModelServer(model=Exploding(), cache_size=0) as server:
        with pytest.raises(RuntimeError, match="kaboom"):
            server.predict(x[0])


# ----------------------------------------------------------------------
# Lifecycle and metrics accounting
# ----------------------------------------------------------------------
def test_close_drains_and_further_requests_rejected(model, x):
    server = ModelServer(model=model, cache_size=0)
    assert server.predict(x[0]) == model.predict(x[:1])[0]
    server.close()
    server.close()  # idempotent
    assert server.closed
    with pytest.raises(RuntimeError):
        server.predict(x[0])
    with pytest.raises(RuntimeError):
        server.predict_many(x[:2])


def test_metrics_account_for_every_request(model, x):
    with ModelServer(model=model, max_batch_size=8, cache_size=0) as server:
        server.predict_many(x)
        snapshot = server.stats()
    counters = snapshot["metrics"]["counters"]
    histograms = snapshot["metrics"]["histograms"]
    assert counters["serve/requests_total"] == len(x)
    # Every non-shed request went through exactly one dispatched batch.
    assert histograms["serve/batch_size"]["sum"] + snapshot["shed"] == len(x)
    assert histograms["serve/latency_seconds"]["count"] == len(x)
    assert snapshot["metrics"]["gauges"]["serve/queue_depth"] == 0
    assert "latency_p50_ms" in snapshot and "latency_p99_ms" in snapshot


def test_registry_server_requires_name(model):
    with pytest.raises(ValueError):
        ModelServer(model=model, registry=ModelRegistry())
    with pytest.raises(ValueError):
        ModelServer(registry=ModelRegistry())
    with pytest.raises(ValueError):
        ModelServer()
