"""Resilience layer: fault injection, retries, breaker, degrade paths.

Covers the :mod:`repro.serve.resilience` primitives in isolation (with
fake clocks and recording sleeps — no real waiting) and the degrade
decisions wired through :class:`~repro.serve.server.ModelServer`:
stale-snapshot fallback, batch rescue, detectable cache corruption,
typed shutdown errors and the health/readiness probes.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.linear.logistic import LogisticRegression
from repro.serve import (
    BreakerOpen,
    CircuitBreaker,
    FaultInjector,
    FaultProfile,
    InjectedFault,
    MicroBatcher,
    ModelRegistry,
    ModelServer,
    PredictionCache,
    ResiliencePolicy,
    RetryPolicy,
    ServerClosed,
)
from repro.serve.batching import ServeRequest
from repro.telemetry.metrics import MetricsRegistry

D = 8


class FakeClock:
    """Manually advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class RecordingSleep:
    """Capture requested delays instead of sleeping."""

    def __init__(self):
        self.delays = []

    def __call__(self, seconds):
        self.delays.append(seconds)


@pytest.fixture
def model():
    return LogisticRegression(D, rng=np.random.default_rng(0))


@pytest.fixture
def x():
    return np.random.default_rng(1).normal(size=(48, D))


def registry_for(model):
    registry = ModelRegistry()
    registry.register("m", lambda: LogisticRegression(D, weight_init_std=0.0))
    registry.publish("m", model)
    return registry


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            FaultProfile(error_rate=1.5)
        with pytest.raises(ValueError):
            FaultProfile(latency_seconds=-1.0)
        assert not FaultProfile().active
        assert FaultProfile(error_rate=0.5).active

    def test_same_seed_replays_same_fault_sequence(self):
        def outcomes(injector):
            result = []
            for _ in range(64):
                try:
                    injector.call("site", lambda: "ok")
                    result.append(True)
                except InjectedFault:
                    result.append(False)
            return result

        profile = {"site": FaultProfile(error_rate=0.3)}
        a = outcomes(FaultInjector(profiles=profile, seed=123))
        b = outcomes(FaultInjector(profiles=profile, seed=123))
        c = outcomes(FaultInjector(profiles=profile, seed=321))
        assert a == b
        assert a != c
        assert not all(a) and any(a)  # really injecting at ~30%

    def test_latency_uses_injected_sleep_and_counters(self):
        sleep = RecordingSleep()
        metrics = MetricsRegistry()
        injector = FaultInjector(
            profiles={
                "s": FaultProfile(latency_rate=1.0, latency_seconds=0.25)
            },
            sleep=sleep,
            metrics=metrics,
        )
        assert injector.call("s", lambda v: v + 1, 1) == 2
        assert sleep.delays == [0.25]
        counters = metrics.snapshot()["counters"]
        assert counters["resilience/faults/s/latency_total"] == 1

    def test_injected_fault_names_site(self):
        injector = FaultInjector(
            profiles={"registry": FaultProfile(error_rate=1.0)}
        )
        with pytest.raises(InjectedFault) as excinfo:
            injector.call("registry", lambda: None)
        assert excinfo.value.site == "registry"

    def test_unlisted_site_uses_default_profile(self):
        injector = FaultInjector(default=FaultProfile(error_rate=1.0))
        with pytest.raises(InjectedFault):
            injector.call("anything", lambda: None)
        clean = FaultInjector()
        assert clean.call("anything", lambda: 7) == 7

    def test_corrupt_perturbs_numeric_values_detectably(self):
        injector = FaultInjector(
            profiles={"cache": FaultProfile(corruption_rate=1.0)}
        )
        original = np.float64(0.75)
        corrupted = injector.corrupt("cache", original)
        assert corrupted != original
        assert (
            PredictionCache.fingerprint(corrupted)
            != PredictionCache.fingerprint(original)
        )
        assert injector.corrupt("cache", "text") == "<corrupted>"
        off = FaultInjector()
        assert off.corrupt("cache", original) is original


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        sleep = RecordingSleep()
        metrics = MetricsRegistry()
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.01, max_delay=0.08,
            sleep=sleep, metrics=metrics,
        )
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("transient")
            return "done"

        assert policy.call(flaky) == "done"
        assert len(attempts) == 3
        assert len(sleep.delays) == 2
        assert metrics.snapshot()["counters"]["resilience/retries_total"] == 2

    def test_jitter_stays_within_exponential_caps(self):
        sleep = RecordingSleep()
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.01, max_delay=0.05, sleep=sleep,
        )

        def always_fails():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            policy.call(always_fails)
        # Full jitter: each delay uniform on [0, min(max, base * 2^n)].
        caps = [policy.backoff_cap(n) for n in range(4)]
        assert caps == [0.01, 0.02, 0.04, 0.05]
        assert len(sleep.delays) == 4
        for delay, cap in zip(sleep.delays, caps):
            assert 0.0 <= delay <= cap

    def test_same_seed_replays_same_backoff_schedule(self):
        def schedule(seed):
            sleep = RecordingSleep()
            policy = RetryPolicy(max_attempts=4, sleep=sleep, seed=seed)
            with pytest.raises(RuntimeError):
                policy.call(lambda: (_ for _ in ()).throw(RuntimeError()))
            return sleep.delays

        assert schedule(9) == schedule(9)
        assert schedule(9) != schedule(10)

    def test_budget_stops_retrying_before_deadline_overrun(self):
        sleep = RecordingSleep()
        clock = FakeClock()
        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, max_delay=1.0,
            sleep=sleep, clock=clock,
        )
        with pytest.raises(RuntimeError, match="nope"):
            policy.call(
                lambda: (_ for _ in ()).throw(RuntimeError("nope")),
                budget=0.0,
            )
        # Any positive backoff overruns a zero budget: no sleeps at all,
        # the last error propagates instead.
        assert sleep.delays == []

    def test_non_retryable_exceptions_propagate_immediately(self):
        calls = []
        policy = RetryPolicy(
            max_attempts=5, retry_on=(KeyError,), sleep=RecordingSleep(),
        )

        def wrong_kind():
            calls.append(1)
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            policy.call(wrong_kind)
        assert len(calls) == 1

    def test_exhaustion_raises_last_error_and_counts(self):
        metrics = MetricsRegistry()
        policy = RetryPolicy(
            max_attempts=3, sleep=RecordingSleep(), metrics=metrics,
        )
        errors = [RuntimeError("a"), RuntimeError("b"), RuntimeError("c")]

        def failing():
            raise errors[0] if len(errors) == 1 else errors.pop(0)

        with pytest.raises(RuntimeError, match="c"):
            policy.call(failing)
        counters = metrics.snapshot()["counters"]
        assert counters["resilience/retry_exhausted_total"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        metrics = MetricsRegistry()
        defaults = dict(
            name="registry", window=8, failure_threshold=0.5,
            min_calls=4, reset_timeout=10.0, half_open_probes=2,
            clock=clock, metrics=metrics,
        )
        defaults.update(kwargs)
        return CircuitBreaker(**defaults), clock, metrics

    def fail(self, breaker, n=4):
        for _ in range(n):
            with pytest.raises(RuntimeError):
                breaker.call(lambda: (_ for _ in ()).throw(RuntimeError()))

    def test_opens_at_failure_threshold_and_fails_fast(self):
        breaker, _clock, metrics = self.make()
        assert breaker.state == "closed"
        self.fail(breaker, 4)
        assert breaker.state == "open"
        with pytest.raises(BreakerOpen) as excinfo:
            breaker.call(lambda: "never runs")
        assert excinfo.value.breaker_name == "registry"
        assert excinfo.value.retry_after > 0
        counters = metrics.snapshot()["counters"]
        assert counters["resilience/breaker/registry/opened_total"] == 1
        assert counters["resilience/breaker/registry/transitions_total"] == 1

    def test_below_min_calls_never_trips(self):
        breaker, _clock, _metrics = self.make(min_calls=6)
        self.fail(breaker, 5)
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes(self):
        breaker, clock, metrics = self.make()
        self.fail(breaker, 4)
        clock.advance(10.1)
        assert breaker.call(lambda: "ok") == "ok"     # first probe
        assert breaker.state == "half_open"
        assert breaker.call(lambda: "ok") == "ok"     # second probe
        assert breaker.state == "closed"
        gauge = metrics.snapshot()["gauges"][
            "resilience/breaker/registry/state"
        ]
        assert gauge == 0.0

    def test_half_open_probe_failure_reopens(self):
        breaker, clock, metrics = self.make()
        self.fail(breaker, 4)
        clock.advance(10.1)
        with pytest.raises(RuntimeError):
            breaker.call(lambda: (_ for _ in ()).throw(RuntimeError()))
        assert breaker.state == "open"
        counters = metrics.snapshot()["counters"]
        assert counters["resilience/breaker/registry/opened_total"] == 2

    def test_half_open_bounds_concurrent_probes(self):
        breaker, clock, _metrics = self.make(half_open_probes=1)
        self.fail(breaker, 4)
        clock.advance(10.1)
        assert breaker.allow()       # the one admitted probe
        assert not breaker.allow()   # probe budget exhausted
        breaker.record(True)
        assert breaker.state == "closed"

    def test_retry_after_counts_down(self):
        breaker, clock, _metrics = self.make(reset_timeout=5.0)
        self.fail(breaker, 4)
        assert breaker.retry_after() == pytest.approx(5.0)
        clock.advance(3.0)
        assert breaker.retry_after() == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(window=0)
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)


# ----------------------------------------------------------------------
# Server degrade decisions
# ----------------------------------------------------------------------
def quiet_policy(**kwargs):
    """A resilience policy whose sleeps are instant (tests stay fast)."""
    defaults = dict(
        max_attempts=3, base_delay=0.0, max_delay=0.0, sleep=lambda _s: None,
    )
    defaults.update(kwargs)
    return ResiliencePolicy(
        retry=RetryPolicy(**defaults),
        registry_breaker=CircuitBreaker(
            name="registry", min_calls=4, reset_timeout=60.0,
        ),
    )


def test_registry_outage_serves_stale_snapshot(model, x):
    injector = FaultInjector()
    server = ModelServer(
        registry=registry_for(model), name="m", cache_size=0,
        resilience=quiet_policy(), fault_injector=injector,
    )
    with server:
        warm = server.predict(x[0])                     # populates last-good
        injector.profiles["registry"] = FaultProfile(error_rate=1.0)
        got = [server.predict(row) for row in x[:12]]
        stats = server.stats()
        health = server.health()
        assert np.array_equal(got, model.predict(x[:12]))
        assert warm == model.predict(x[:1])[0]
        assert stats["stale_model_served"] > 0
        assert health["breakers"]["registry"] == "open"
        assert health["status"] == "degraded"
        assert health["active_model"]["stale"] is True
        assert server.ready()  # stale fallback still answers


def test_registry_outage_without_snapshot_propagates(model, x):
    injector = FaultInjector(
        profiles={"registry": FaultProfile(error_rate=1.0)}
    )
    server = ModelServer(
        registry=registry_for(model), name="m", cache_size=0,
        resilience=quiet_policy(), fault_injector=injector,
    )
    with server:
        with pytest.raises(InjectedFault):
            server.predict(x[0])
        assert not server.ready()


def test_failed_batch_is_rescued_row_by_row(model, x):
    class PoisonedBatches:
        """Fails multi-row calls; single-row (rescue) calls succeed."""

        def __init__(self, inner):
            self.inner = inner

        def predict(self, batch):
            if batch.shape[0] > 1:
                raise RuntimeError("poisoned batch")
            return self.inner.predict(batch)

    server = ModelServer(
        model=PoisonedBatches(model), cache_size=0, max_batch_size=8,
        batch_timeout=0.05, workers=1,
        resilience=quiet_policy(max_attempts=1),
    )
    with server:
        with ThreadPoolExecutor(max_workers=8) as pool:
            got = np.array(list(pool.map(server.predict, x[:16])))
    stats = server.stats()
    assert np.array_equal(got, model.predict(x[:16]))
    assert stats["rescued"] > 0


def test_model_retry_recovers_transient_dispatch_errors(model, x):
    class FlakyModel:
        def __init__(self, inner):
            self.inner = inner
            self.calls = 0
            self._lock = threading.Lock()

        def predict(self, batch):
            with self._lock:
                self.calls += 1
                if self.calls % 2 == 1:
                    raise RuntimeError("transient")
            return self.inner.predict(batch)

    server = ModelServer(
        model=FlakyModel(model), cache_size=0, workers=1,
        resilience=quiet_policy(),
    )
    with server:
        got = np.array(server.predict_many(x[:8]))
    assert np.array_equal(got, model.predict(x[:8]))
    assert server.stats()["retries"] > 0


def test_cache_corruption_detected_and_recomputed(model, x):
    injector = FaultInjector(
        profiles={"cache": FaultProfile(corruption_rate=1.0)}
    )
    server = ModelServer(
        model=model, fault_injector=injector, cache_size=32,
        batch_timeout=0.0, workers=1,
    )
    with server:
        first = server.predict_proba(x[0])    # poisoned on insert
        second = server.predict_proba(x[0])   # mismatch -> recompute
        assert first == second == model.predict_proba(x[:1])[0]
        cache = server.cache.stats()
        assert cache["integrity"] is True
        assert cache["corruptions"] >= 1
        assert server.cache.hits == 0         # the poisoned hit did not count


def test_health_and_ready_probes(model, x):
    with ModelServer(model=model, max_queue=16) as server:
        server.predict(x[0])
        health = server.health()
        assert health["status"] == "ok"
        assert health["queue_capacity"] == 16
        assert 0.0 <= health["queue_saturation"] <= 1.0
        assert health["workers"] == 2
        assert health["active_model"]["version"] == "v0"
        assert health["breakers"] == {}
        assert server.ready()
    assert server.health()["status"] == "closed"
    assert not server.ready()


# ----------------------------------------------------------------------
# Shutdown: typed errors, no abandoned futures (regression)
# ----------------------------------------------------------------------
def test_close_drain_completes_queued_requests():
    released = threading.Event()
    dispatched = []

    def dispatch(method, rows):
        released.wait(timeout=5.0)
        dispatched.append(len(rows))
        return [0] * len(rows)

    batcher = MicroBatcher(
        dispatch, max_batch_size=2, batch_timeout=0.0, max_queue=16,
        workers=1,
    )
    requests = [ServeRequest("predict", np.zeros(1), 0.0) for _ in range(6)]
    assert batcher.submit_many(requests) == 6
    closer = threading.Thread(target=batcher.close, kwargs={"drain": True})
    closer.start()
    released.set()
    closer.join(timeout=5.0)
    assert not closer.is_alive()
    for request in requests:
        assert request.done()
        assert request.error is None
    assert sum(dispatched) == 6


def test_close_without_drain_fails_queued_with_server_closed():
    released = threading.Event()

    def dispatch(method, rows):
        released.wait(timeout=5.0)
        return [0] * len(rows)

    batcher = MicroBatcher(
        dispatch, max_batch_size=1, batch_timeout=0.0, max_queue=16,
        workers=1,
    )
    requests = [ServeRequest("predict", np.zeros(1), 0.0) for _ in range(5)]
    assert batcher.submit_many(requests) == 5
    # Worker holds request 0 in dispatch; the rest are still queued.
    time.sleep(0.05)
    closer = threading.Thread(target=batcher.close, kwargs={"drain": False})
    closer.start()
    released.set()
    closer.join(timeout=5.0)
    assert not closer.is_alive()
    outcomes = []
    for request in requests:
        assert request.done()  # regression: nobody left waiting forever
        outcomes.append(request.error)
    assert all(
        error is None or isinstance(error, ServerClosed)
        for error in outcomes
    )
    assert any(isinstance(error, ServerClosed) for error in outcomes)


def test_submissions_after_close_raise_typed_error(model, x):
    server = ModelServer(model=model, cache_size=0)
    server.close()
    with pytest.raises(ServerClosed):
        server.predict(x[0])
    with pytest.raises(ServerClosed):
        server.predict_many(x[:2])
    # ServerClosed subclasses RuntimeError: pre-resilience callers that
    # caught RuntimeError keep working.
    assert issubclass(ServerClosed, RuntimeError)


# ----------------------------------------------------------------------
# PredictionCache accounting under concurrency (regression)
# ----------------------------------------------------------------------
def test_cache_stats_consistent_under_interleaved_threads():
    cache = PredictionCache(maxsize=32)
    keys = [
        PredictionCache.make_key("predict", "v1", np.array([float(i)]))
        for i in range(128)
    ]
    lookups_per_thread = 400
    n_threads = 8
    snapshots = []

    def worker(seed):
        rng = np.random.default_rng(seed)
        for _ in range(lookups_per_thread):
            key = keys[int(rng.integers(len(keys)))]
            hit, _value = cache.get(key)
            if not hit:
                cache.put(key, seed)
            if rng.random() < 0.02:
                snapshots.append(cache.stats())

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    final = cache.stats()
    # Size accounting: every insert is matched by an eviction or a live
    # entry — in the final state and in every mid-flight snapshot.
    for snap in snapshots + [final]:
        assert snap["inserts"] - snap["evictions"] == snap["size"]
        assert snap["size"] <= snap["maxsize"]
    assert final["hits"] + final["misses"] == n_threads * lookups_per_thread
    assert final["hits"] > 0 and final["misses"] > 0
    assert final["evictions"] > 0  # 128 hot keys vs 32 slots: LRU churned
    assert len(cache) == final["size"]


def test_cache_clear_and_poisoned_accounting():
    cache = PredictionCache(maxsize=8, integrity=True)
    key = PredictionCache.make_key("predict", "v1", np.array([1.0]))
    cache.put_poisoned(key, np.float64(-9.0), np.float64(1.0))
    hit, value = cache.get(key)
    assert (hit, value) == (False, None)
    assert cache.stats()["corruptions"] == 1
    cache.put(key, np.float64(1.0))
    assert cache.get(key) == (True, np.float64(1.0))
    cache.clear()
    stats = cache.stats()
    assert stats["size"] == 0
    assert stats["inserts"] - stats["evictions"] == 0
