"""Sharded tier: equivalence, chaos recovery, hot-swap, health."""

import time

import numpy as np
import pytest

from repro.linear.logistic import LogisticRegression
from repro.serve import ModelRegistry, ModelServer, ServerClosed
from repro.serve.sharding import ShardedModelServer

D = 12


@pytest.fixture
def model():
    return LogisticRegression(D, rng=np.random.default_rng(0))


@pytest.fixture
def x():
    return np.random.default_rng(1).normal(size=(96, D))


@pytest.fixture
def server(model):
    srv = ShardedModelServer(
        model=model, n_shards=2, monitor_interval=0.02,
        batch_timeout=0.001,
    )
    yield srv
    srv.close()


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


# ----------------------------------------------------------------------
# Equivalence with the direct model
# ----------------------------------------------------------------------
def test_sharded_labels_bit_identical(server, model, x):
    got = np.asarray(server.predict_many(x))
    assert np.array_equal(got, model.predict(x))


def test_sharded_probabilities_match(server, model, x):
    got = np.asarray(server.predict_many(x, method="predict_proba"))
    np.testing.assert_allclose(got, model.predict_proba(x), atol=1e-12)


def test_single_request_paths(server, model, x):
    assert server.predict(x[0]) == model.predict(x[:1])[0]
    assert server.predict_proba(x[1]) == pytest.approx(
        model.predict_proba(x[:2])[1], abs=1e-12
    )


def test_unsupported_method_raises(server, x):
    with pytest.raises(ValueError, match="does not support"):
        server.request("transform", x[0])


def test_same_row_always_routes_to_same_shard(model, x):
    srv = ShardedModelServer(
        model=model, n_shards=2, cache_size=0, monitor_interval=0.02,
    )
    try:
        for _ in range(10):
            srv.predict(x[0])
        split = srv.stats()["shard_requests"]
        active = [shard for shard, n in split.items() if n > 0]
        assert len(active) == 1  # content-hashed: one owner per row
    finally:
        srv.close()


# ----------------------------------------------------------------------
# Chaos: dead workers
# ----------------------------------------------------------------------
def test_kill_one_worker_drops_nothing(server, model, x):
    got1 = np.asarray(server.predict_many(x[:32]))
    server.supervisor.kill(0)
    got2 = np.asarray(server.predict_many(x))  # mid-death traffic
    assert np.array_equal(got1, model.predict(x[:32]))
    assert np.array_equal(got2, model.predict(x))


def test_dead_worker_is_respawned_and_serves_again(server, model, x):
    server.supervisor.kill(1)
    assert _wait_for(lambda: server.supervisor.handles[1].alive)
    assert server.supervisor.handles[1].respawns >= 1
    got = np.asarray(server.predict_many(x))
    assert np.array_equal(got, model.predict(x))


def test_health_reports_dead_shard_as_degraded(model):
    # A very slow monitor so the dead worker stays dead while we probe.
    srv = ShardedModelServer(
        model=model, n_shards=2, monitor_interval=30.0,
    )
    try:
        assert srv.health()["status"] == "ok"
        srv.supervisor.kill(0)
        assert _wait_for(
            lambda: not srv.supervisor.handles[0].alive
        )
        health = srv.health()
        assert health["status"] == "degraded"
        assert health["alive_shards"] == 1
        dead = health["shards"][0]
        assert dead["alive"] is False
        assert srv.ready()  # inline fallback still answers
        # Manual respawn restores full health.
        assert srv.supervisor.respawn(0)
        assert _wait_for(lambda: srv.health()["status"] == "ok")
    finally:
        srv.close()


# ----------------------------------------------------------------------
# Hot-swap propagation
# ----------------------------------------------------------------------
def _registry_with(model):
    registry = ModelRegistry()
    registry.register(
        "m", lambda: LogisticRegression(D, weight_init_std=0.0)
    )
    return registry, registry.publish("m", model)


def test_publish_reaches_every_worker(model, x):
    registry, v1 = _registry_with(model)
    srv = ShardedModelServer(
        registry=registry, name="m", n_shards=2, monitor_interval=0.02,
    )
    try:
        assert np.array_equal(
            np.asarray(srv.predict_many(x)), model.predict(x)
        )
        other = LogisticRegression(D, rng=np.random.default_rng(7))
        v2 = registry.publish("m", other)
        assert v2 != v1
        got = np.asarray(srv.predict_many(x))
        assert srv.version == v2
        assert np.array_equal(got, other.predict(x))
        for status in srv.supervisor.statuses():
            assert status["active_version"] == v2
    finally:
        srv.close()


def test_respawn_uses_last_known_good_version(model, x):
    registry, _v1 = _registry_with(model)
    srv = ShardedModelServer(
        registry=registry, name="m", n_shards=2, monitor_interval=0.02,
    )
    try:
        other = LogisticRegression(D, rng=np.random.default_rng(7))
        v2 = registry.publish("m", other)
        srv.hot_swap()
        srv.supervisor.kill(0)
        assert _wait_for(
            lambda: srv.supervisor.handles[0].alive
            and srv.supervisor.handles[0].respawns >= 1
        )
        assert srv.supervisor.statuses()[0]["active_version"] == v2
        got = np.asarray(srv.predict_many(x))
        assert np.array_equal(got, other.predict(x))
    finally:
        srv.close()


def test_hot_swap_requires_registry(server):
    with pytest.raises(RuntimeError, match="registry"):
        server.hot_swap()


# ----------------------------------------------------------------------
# Lifecycle and introspection
# ----------------------------------------------------------------------
def test_close_rejects_new_requests(model, x):
    srv = ShardedModelServer(model=model, n_shards=2)
    srv.close()
    assert srv.closed
    assert not srv.ready()
    assert srv.health()["status"] == "closed"
    with pytest.raises(ServerClosed):
        srv.predict(x[0])
    srv.close()  # idempotent


def test_health_shape(server):
    health = server.health()
    assert health["n_shards"] == 2
    assert len(health["shards"]) == 2
    for status in health["shards"]:
        for key in ("shard", "alive", "queue_depth", "active_version",
                    "breaker", "respawns", "pid"):
            assert key in status


def test_base_server_health_exposes_shards_key(model):
    with ModelServer(model=model) as srv:
        health = srv.health()
        assert len(health["shards"]) == 1
        assert health["shards"][0]["alive"] is True
        assert health["shards"][0]["active_version"] == "v0"


def test_stats_per_shard_split_sums_to_dispatched(server, x):
    server.predict_many(x)
    stats = server.stats()
    dispatched = sum(stats["shard_requests"].values())
    inline = stats["shed"] + stats["deadline_expired"] + stats["rescued"]
    cache_hits = stats["metrics"]["counters"].get(
        "serve/cache_hits_total", 0.0
    )
    assert dispatched + inline + cache_hits == stats["requests"]


def test_constructor_validation(model):
    with pytest.raises(ValueError, match="exactly one"):
        ShardedModelServer()
    with pytest.raises(ValueError, match="n_shards"):
        ShardedModelServer(model=model, n_shards=0)
    with pytest.raises(ValueError, match="n_features"):
        ShardedModelServer(model=object())
