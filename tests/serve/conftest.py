"""Serve-tier tests run under the runtime lock-order sanitizer.

Every ``threading.Lock``/``RLock``/``Condition`` created by ``repro.*``
modules during a test is a :class:`CheckedLock`; any lock-order
inversion observed live fails the test at teardown.  Recording mode
(no mid-flight raise) keeps worker threads alive so the request that
exhibited the inversion still completes — the teardown assertion is
what turns the suite red.
"""

import pytest

from repro.tools.analyze import lockcheck


@pytest.fixture(autouse=True)
def lock_order_sanitizer():
    tracker = lockcheck.LockOrderTracker(raise_on_inversion=False)
    with lockcheck.installed(tracker=tracker):
        yield tracker
    assert not tracker.inversions, "\n".join(
        inversion.describe() for inversion in tracker.inversions
    )
