"""Tests for the hyper-parameter guidance helper."""

import pytest

from repro.core import (
    GMRegularizer,
    LazyUpdateSchedule,
    make_recommended_regularizer,
    recommend,
)
from repro.core.guidance import LAZY_UPDATE_THRESHOLD


def test_paper_policy_constants():
    rec = recommend(n_dimensions=89440, n_samples=50000, is_deep=True)
    assert rec.hyperparams.n_components == 4
    assert rec.hyperparams.alpha_exponent == 0.5
    assert rec.hyperparams.a_scale == 0.01
    assert rec.init_method == "linear"


def test_large_deep_model_gets_lazy_schedule():
    rec = recommend(n_dimensions=270896, n_samples=50000, is_deep=True)
    assert rec.schedule == LazyUpdateSchedule(
        model_interval=50, gm_interval=50, eager_epochs=2
    )


def test_small_model_stays_eager():
    rec = recommend(n_dimensions=375, n_samples=1755, is_deep=False)
    assert not rec.schedule.is_lazy


def test_deep_but_small_tensor_stays_eager():
    rec = recommend(
        n_dimensions=LAZY_UPDATE_THRESHOLD - 1, n_samples=50000, is_deep=True
    )
    assert not rec.schedule.is_lazy


def test_gamma_scales_with_inverse_sample_size():
    big = recommend(100, 100000).hyperparams.gamma
    mid = recommend(100, 2000).hyperparams.gamma
    small = recommend(100, 200).hyperparams.gamma
    assert big < mid < small


def test_gamma_values_are_on_paper_grid():
    from repro.core import gamma_grid
    for n in (100, 2000, 100000):
        assert recommend(50, n).hyperparams.gamma in gamma_grid()


def test_rationale_is_informative():
    rec = recommend(100, 100)
    assert "K=4" in rec.rationale
    assert "gamma" in rec.rationale


def test_make_recommended_regularizer():
    reg = make_recommended_regularizer(
        n_dimensions=20000, n_samples=50000, is_deep=True
    )
    assert isinstance(reg, GMRegularizer)
    assert reg.schedule.is_lazy
    assert reg.mixture.n_components == 4


def test_validation():
    with pytest.raises(ValueError):
        recommend(0, 100)
    with pytest.raises(ValueError):
        recommend(100, 0)
