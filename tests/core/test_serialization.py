"""Tests for GM regularizer checkpointing."""

import numpy as np
import pytest

from repro.core import (
    GMHyperParams,
    GMRegularizer,
    LazyUpdateSchedule,
    gm_regularizer_from_dict,
    gm_regularizer_to_dict,
    load_gm_regularizer,
    save_gm_regularizer,
)


@pytest.fixture
def trained_reg(rng):
    reg = GMRegularizer(
        n_dimensions=200,
        weight_init_std=0.1,
        hyperparams=GMHyperParams(gamma=0.01, alpha_exponent=0.7),
        init_method="proportional",
        schedule=LazyUpdateSchedule(model_interval=5, gm_interval=10,
                                    eager_epochs=1),
    )
    w = np.concatenate([rng.normal(0, 0.02, 180), rng.normal(0, 0.5, 20)])
    for it in range(50):
        reg.prepare(w, it)
        reg.update(w, it)
    reg.epoch_end(0)
    return reg, w


def test_roundtrip_preserves_mixture(trained_reg):
    reg, _w = trained_reg
    restored = gm_regularizer_from_dict(gm_regularizer_to_dict(reg))
    assert np.array_equal(restored.pi, reg.pi)
    assert np.array_equal(restored.lam, reg.lam)
    assert restored.n_dimensions == reg.n_dimensions
    assert restored.init_method == reg.init_method


def test_roundtrip_preserves_schedule_and_counters(trained_reg):
    reg, _w = trained_reg
    restored = gm_regularizer_from_dict(gm_regularizer_to_dict(reg))
    assert restored.schedule == reg.schedule
    assert restored.estep_count == reg.estep_count
    assert restored.mstep_count == reg.mstep_count
    assert restored._epoch == reg._epoch


def test_roundtrip_preserves_hyperparams(trained_reg):
    reg, _w = trained_reg
    restored = gm_regularizer_from_dict(gm_regularizer_to_dict(reg))
    assert restored.hyperparams == reg.hyperparams


def test_resumed_regularizer_continues_identically(trained_reg):
    reg, w = trained_reg
    restored = gm_regularizer_from_dict(gm_regularizer_to_dict(reg))
    for it in range(50, 70):
        reg.prepare(w, it)
        reg.update(w, it)
        restored.prepare(w, it)
        restored.update(w, it)
    assert np.allclose(reg.pi, restored.pi)
    assert np.allclose(reg.lam, restored.lam)
    assert np.array_equal(reg.gradient(w), restored.gradient(w))


def test_cached_gradient_survives_roundtrip(trained_reg):
    reg, w = trained_reg
    cached_before = reg.gradient(w).copy()
    restored = gm_regularizer_from_dict(gm_regularizer_to_dict(reg))
    assert np.array_equal(restored.gradient(w), cached_before)


def test_file_roundtrip(tmp_path, trained_reg):
    reg, _w = trained_reg
    path = str(tmp_path / "gm.json")
    save_gm_regularizer(reg, path)
    restored = load_gm_regularizer(path)
    assert np.array_equal(restored.pi, reg.pi)


def test_unknown_format_version_rejected(trained_reg):
    reg, _w = trained_reg
    state = gm_regularizer_to_dict(reg)
    state["format_version"] = 999
    with pytest.raises(ValueError):
        gm_regularizer_from_dict(state)
