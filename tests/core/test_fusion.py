"""Unit tests for the fused E-step/gradient hot path (repro.core.fusion).

Covers the tentpole invariants of the speed pass:

- the exact kernel (the default) is bit-identical to the unfused
  reference arithmetic, standalone and through a full mutating
  regularizer trajectory, single-layer and stacked;
- the fast kernel agrees with the reference at documented tolerances
  (float64: few-ulp; float32: single-precision scale), for
  responsibilities, gradient and M-step sufficient statistics;
- the density-evaluation counter halves under fusion while
  ``estep_count`` semantics are unchanged, and the trainer publishes
  it as a gauge;
- the workspace buffer cache and the stacked trainer driver behave.
"""

import numpy as np
import pytest

from repro.core import (
    EStepResult,
    GMRegularizer,
    LazyUpdateSchedule,
    Workspace,
    fused_estep,
    stacked_estep,
    stacked_prepare,
    suffstats_from_responsibilities,
)
from repro.core.gaussian_mixture import GaussianMixture
from repro.optim import Parameter


def make_mixture(k, scale, seed):
    r = np.random.default_rng(seed)
    pi = r.random(k)
    pi /= pi.sum()
    lam = np.sort(r.random(k) * 100.0 / scale)
    return GaussianMixture(pi=pi, lam=lam)


@pytest.fixture
def layers(rng):
    """Three (mixture, weights) pairs with mixed component counts."""
    mixtures = [make_mixture(4, 1, 1), make_mixture(3, 2, 2), make_mixture(4, 5, 3)]
    ws = [rng.normal(0, 0.1, size=n) for n in (500, 1200, 800)]
    return mixtures, ws


def reference(mixture, w):
    resp = mixture.responsibilities(w)
    return resp, (resp @ mixture.lam) * w


# ----------------------------------------------------------------------
# Exact kernel: bit identity
# ----------------------------------------------------------------------
def test_exact_kernel_bit_identical_single(layers):
    mixtures, ws = layers
    for m, w in zip(mixtures, ws):
        ref_resp, ref_grad = reference(m, w)
        result = fused_estep(m, w, kernel="exact")
        assert np.array_equal(result.responsibilities, ref_resp)
        assert np.array_equal(result.gradient, ref_grad)


def test_exact_kernel_bit_identical_stacked_mixed_k(layers):
    mixtures, ws = layers
    results = stacked_estep(mixtures, ws, kernel="exact")
    for result, m, w in zip(results, mixtures, ws):
        ref_resp, ref_grad = reference(m, w)
        assert np.array_equal(result.responsibilities, ref_resp)
        assert np.array_equal(result.gradient, ref_grad)


def test_fused_regularizer_trajectory_bit_identical(rng):
    """Whole E/M trajectory: fused default vs legacy, same bits."""
    w_fused = rng.normal(0, 0.1, 400)
    w_legacy = w_fused.copy()
    fused = GMRegularizer(n_dimensions=400, weight_init_std=0.1)
    legacy = GMRegularizer(n_dimensions=400, weight_init_std=0.1, fused=False)
    assert fused.fused and fused.kernel == "exact"
    for it in range(10):
        fused.prepare(w_fused, it)
        legacy.prepare(w_legacy, it)
        gf, gl = fused.gradient(w_fused), legacy.gradient(w_legacy)
        assert np.array_equal(gf, gl)
        fused.update(w_fused, it)
        legacy.update(w_legacy, it)
        assert np.array_equal(fused.pi, legacy.pi)
        assert np.array_equal(fused.lam, legacy.lam)
        # simulate the SGD step so each E-step sees fresh parameters
        w_fused -= 0.05 * gf
        w_legacy -= 0.05 * gl


# ----------------------------------------------------------------------
# Fast kernel: documented tolerances
# ----------------------------------------------------------------------
def test_fast_kernel_float64_agreement(layers):
    mixtures, ws = layers
    results = stacked_estep(mixtures, ws, kernel="fast")
    for result, m, w in zip(results, mixtures, ws):
        ref_resp, ref_grad = reference(m, w)
        np.testing.assert_allclose(
            result.responsibilities, ref_resp, rtol=0, atol=1e-13
        )
        np.testing.assert_allclose(result.gradient, ref_grad, rtol=1e-12)


def test_fast_kernel_float32_agreement(layers):
    mixtures, ws = layers
    results = stacked_estep(
        mixtures, ws, kernel="fast", compute_dtype=np.float32
    )
    for result, m, w in zip(results, mixtures, ws):
        ref_resp, ref_grad = reference(m, w)
        assert result.responsibilities.dtype == np.float32
        assert result.gradient.dtype == np.float64
        np.testing.assert_allclose(
            result.responsibilities.astype(np.float64), ref_resp,
            rtol=0, atol=1e-5,
        )
        np.testing.assert_allclose(result.gradient, ref_grad, rtol=1e-4)


def test_float32_mstep_stats_agree_with_float64(layers):
    """Eq. 13/17 sufficient statistics from float32 responsibilities
    (accumulated in float64) track the float64 path."""
    mixtures, ws = layers
    r64 = stacked_estep(mixtures, ws, kernel="fast")
    r32 = stacked_estep(mixtures, ws, kernel="fast", compute_dtype=np.float32)
    for a, b, w in zip(r64, r32, ws):
        s0_64, s1_64 = suffstats_from_responsibilities(a.responsibilities, w)
        s0_32, s1_32 = suffstats_from_responsibilities(b.responsibilities, w)
        assert s0_32.dtype == np.float64 and s1_32.dtype == np.float64
        np.testing.assert_allclose(s0_32, s0_64, rtol=1e-4)
        np.testing.assert_allclose(s1_32, s1_64, rtol=1e-3)


def test_exact_kernel_rejects_float32():
    m = make_mixture(4, 1, 1)
    with pytest.raises(ValueError, match="float64-only"):
        fused_estep(m, np.zeros(8), kernel="exact", compute_dtype=np.float32)


def test_unknown_kernel_rejected():
    m = make_mixture(4, 1, 1)
    with pytest.raises(ValueError, match="kernel"):
        fused_estep(m, np.zeros(8), kernel="fused")


# ----------------------------------------------------------------------
# Counter semantics: fused iterations evaluate densities once
# ----------------------------------------------------------------------
def run_eager(reg, w, iterations=10, lr=0.05):
    w = w.copy()
    for it in range(iterations):
        reg.prepare(w, it)
        g = reg.gradient(w)
        reg.update(w, it)
        w -= lr * g


def test_density_evals_half_of_legacy(rng):
    w = rng.normal(0, 0.1, 300)
    fused = GMRegularizer(n_dimensions=300, weight_init_std=0.1)
    legacy = GMRegularizer(n_dimensions=300, weight_init_std=0.1, fused=False)
    run_eager(fused, w)
    run_eager(legacy, w)
    # estep_count semantics unchanged: one refresh per eager iteration.
    assert fused.estep_count == legacy.estep_count == 10
    assert fused.mstep_count == legacy.mstep_count == 10
    # The fusion is visible in the density-evaluation count alone.
    assert fused.density_evals == 10
    assert legacy.density_evals == 20


def test_density_evals_with_desynchronized_schedule(rng):
    """With Ig != Im the M-step cannot reuse the stale E-step matrix and
    must pay its own density evaluation."""
    w = rng.normal(0, 0.1, 300)
    schedule = LazyUpdateSchedule(
        model_interval=2, gm_interval=4, eager_epochs=0
    )
    reg = GMRegularizer(
        n_dimensions=300, weight_init_std=0.1, schedule=schedule
    )
    evals_when_reused = reg.density_evals
    for it in range(8):
        reg.prepare(w, it)
        reg.update(w, it)
    # E-steps at iterations where gm_interval divides; M-steps more
    # often -- those fall back to a fresh em_step evaluation.
    assert reg.estep_count + reg.mstep_count >= reg.density_evals
    assert reg.density_evals > evals_when_reused


def test_trainer_publishes_density_evals_gauge(rng):
    from repro.linear import LogisticRegression
    from repro.optim import Trainer

    x = rng.normal(size=(80, 10))
    y = (x[:, 0] > 0).astype(np.int64)
    reg = GMRegularizer(n_dimensions=10)
    model = LogisticRegression(10, regularizer=reg, rng=rng)
    trainer = Trainer(model, lr=0.3, batch_size=16)
    trainer.fit(x, y, epochs=3, rng=rng)
    gauges = trainer.metrics.snapshot()["gauges"]
    assert gauges["em/density_evals"] == reg.density_evals
    # Fused default: one evaluation per E-step refresh.
    assert reg.density_evals == reg.estep_count


# ----------------------------------------------------------------------
# Stacked trainer driver
# ----------------------------------------------------------------------
def test_stacked_prepare_serves_fusable_group(rng):
    regs = [
        GMRegularizer(n_dimensions=n, weight_init_std=0.1)
        for n in (200, 300)
    ]
    legacy = GMRegularizer(n_dimensions=100, weight_init_std=0.1, fused=False)
    params = [
        Parameter("a", rng.normal(0, 0.1, 200), regs[0]),
        Parameter("b", rng.normal(0, 0.1, 300), regs[1]),
        Parameter("c", rng.normal(0, 0.1, 100), legacy),
        Parameter("plain", rng.normal(0, 0.1, 50), None),
    ]
    served = stacked_prepare(params, iteration=0)
    assert served == 2
    for reg, param in zip(regs + [legacy], params):
        assert reg.estep_count == 1
        assert np.array_equal(
            reg.gradient(param.value), reg._cached_reg_grad
        )


def test_stacked_prepare_matches_per_layer_prepare(rng):
    values = [rng.normal(0, 0.1, n) for n in (200, 300)]
    stacked_regs = [
        GMRegularizer(n_dimensions=v.size, weight_init_std=0.1)
        for v in values
    ]
    solo_regs = [
        GMRegularizer(n_dimensions=v.size, weight_init_std=0.1)
        for v in values
    ]
    params = [
        Parameter(str(i), v, r)
        for i, (v, r) in enumerate(zip(values, stacked_regs))
    ]
    stacked_prepare(params, iteration=0)
    for solo, stacked, v in zip(solo_regs, stacked_regs, values):
        solo.prepare(v, 0)
        assert np.array_equal(solo.gradient(v), stacked.gradient(v))
        solo.update(v, 0)
        stacked.update(v, 0)
        assert np.array_equal(solo.pi, stacked.pi)
        assert np.array_equal(solo.lam, stacked.lam)


# ----------------------------------------------------------------------
# Workspace
# ----------------------------------------------------------------------
def test_workspace_reuses_and_reallocates():
    ws = Workspace()
    a = ws.get("k", (4, 5), np.dtype(np.float64))
    assert ws.get("k", (4, 5), np.dtype(np.float64)) is a
    b = ws.get("k", (4, 6), np.dtype(np.float64))
    assert b is not a and b.shape == (4, 6)
    c = ws.get("k", (4, 6), np.dtype(np.float32))
    assert c is not b and c.dtype == np.float32
    assert ws.nbytes() > 0
    ws.clear()
    assert ws.nbytes() == 0


def test_workspace_zeros_clears_contents():
    ws = Workspace()
    buf = ws.zeros("z", (3,), np.dtype(np.float64))
    buf[:] = 7.0
    assert np.array_equal(ws.zeros("z", (3,), np.dtype(np.float64)),
                          np.zeros(3))


def test_estep_result_exposes_fields(layers):
    mixtures, ws = layers
    result = fused_estep(mixtures[0], ws[0], kernel="fast")
    assert isinstance(result, EStepResult)
    assert result.responsibilities.shape == (500, 4)
    assert result.gradient.shape == (500,)
