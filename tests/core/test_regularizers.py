"""Unit tests for the fixed-form baseline regularizers.

Every gradient is checked against a numerical derivative of the penalty
(at points away from the L1/Huber kinks).
"""

import numpy as np
import pytest

from repro.core import (
    ElasticNetRegularizer,
    HuberRegularizer,
    L1Regularizer,
    L2Regularizer,
    NoRegularizer,
)


def numeric_grad(reg, w, eps=1e-6):
    grad = np.zeros_like(w)
    for i in range(w.size):
        wp, wm = w.copy(), w.copy()
        wp[i] += eps
        wm[i] -= eps
        grad[i] = (reg.penalty(wp) - reg.penalty(wm)) / (2 * eps)
    return grad


@pytest.fixture
def w(rng):
    values = rng.normal(0, 1.0, size=20)
    # Keep points away from |w|=0 kinks for numerical differentiation.
    values[np.abs(values) < 0.05] = 0.3
    return values


def test_no_regularizer_is_zero(w):
    reg = NoRegularizer()
    assert reg.penalty(w) == 0.0
    assert np.array_equal(reg.gradient(w), np.zeros_like(w))


def test_l1_penalty_and_gradient(w):
    reg = L1Regularizer(strength=2.5)
    assert np.isclose(reg.penalty(w), 2.5 * np.abs(w).sum())
    assert np.allclose(reg.gradient(w), numeric_grad(reg, w), atol=1e-5)


def test_l2_penalty_and_gradient(w):
    reg = L2Regularizer(strength=3.0)
    assert np.isclose(reg.penalty(w), 1.5 * np.square(w).sum())
    assert np.allclose(reg.gradient(w), numeric_grad(reg, w), atol=1e-5)


def test_l2_gradient_is_strength_times_w(w):
    reg = L2Regularizer(strength=7.0)
    assert np.allclose(reg.gradient(w), 7.0 * w)


def test_elastic_net_interpolates(w):
    strength = 4.0
    pure_l1 = ElasticNetRegularizer(strength, l1_ratio=1.0)
    pure_l2 = ElasticNetRegularizer(strength, l1_ratio=0.0)
    assert np.isclose(pure_l1.penalty(w), L1Regularizer(strength).penalty(w))
    assert np.isclose(pure_l2.penalty(w), L2Regularizer(strength).penalty(w))


def test_elastic_net_gradient_numeric(w):
    reg = ElasticNetRegularizer(strength=2.0, l1_ratio=0.3)
    assert np.allclose(reg.gradient(w), numeric_grad(reg, w), atol=1e-5)


def test_huber_is_quadratic_near_zero_linear_far():
    reg = HuberRegularizer(strength=1.0, mu=1.0)
    small = np.array([0.2])
    large = np.array([5.0])
    assert np.isclose(reg.penalty(small), 0.02)  # x^2 / (2 mu)
    assert np.isclose(reg.penalty(large), 4.5)  # |x| - mu/2


def test_huber_gradient_continuous_at_threshold():
    reg = HuberRegularizer(strength=1.0, mu=0.7)
    below = reg.gradient(np.array([0.7 - 1e-9]))[0]
    above = reg.gradient(np.array([0.7 + 1e-9]))[0]
    assert abs(below - above) < 1e-6


def test_huber_gradient_numeric(w):
    reg = HuberRegularizer(strength=1.5, mu=0.8)
    # Avoid the kink at |w| = mu.
    safe = w[np.abs(np.abs(w) - 0.8) > 0.05]
    assert np.allclose(reg.gradient(safe), numeric_grad(reg, safe), atol=1e-5)


@pytest.mark.parametrize("cls", [L1Regularizer, L2Regularizer])
def test_negative_strength_rejected(cls):
    with pytest.raises(ValueError):
        cls(strength=-1.0)


def test_elastic_net_validates_ratio():
    with pytest.raises(ValueError):
        ElasticNetRegularizer(1.0, l1_ratio=1.5)


def test_huber_validates_mu():
    with pytest.raises(ValueError):
        HuberRegularizer(1.0, mu=0.0)


def test_zero_strength_is_no_op(w):
    for reg in (L1Regularizer(0.0), L2Regularizer(0.0),
                ElasticNetRegularizer(0.0), HuberRegularizer(0.0)):
        assert reg.penalty(w) == 0.0
        assert np.allclose(reg.gradient(w), 0.0)


def test_prepare_update_hooks_are_noops(w):
    reg = L2Regularizer(1.0)
    before = reg.gradient(w).copy()
    reg.prepare(w, iteration=0)
    reg.update(w, iteration=0)
    reg.epoch_end(0)
    assert np.array_equal(reg.gradient(w), before)
