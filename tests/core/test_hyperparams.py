"""Unit tests for the GM hyper-parameter policy (Section V-B1)."""

import numpy as np
import pytest

from repro.core import DEFAULT_GAMMA_GRID, GMHyperParams, gamma_grid


def test_gamma_grid_matches_paper():
    assert gamma_grid() == (0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05)
    assert DEFAULT_GAMMA_GRID == gamma_grid()


def test_b_is_gamma_times_m():
    hp = GMHyperParams(gamma=0.005)
    assert np.isclose(hp.gamma_rate(1000), 5.0)


def test_a_is_one_plus_scale_times_b():
    hp = GMHyperParams(gamma=0.01, a_scale=0.01)
    # b = 0.01 * 500 = 5; a = 1 + 0.05.
    assert np.isclose(hp.gamma_shape(500), 1.05)


def test_alpha_is_m_to_the_exponent():
    hp = GMHyperParams(alpha_exponent=0.5, n_components=4)
    alpha = hp.dirichlet_alpha(10000)
    assert alpha.shape == (4,)
    assert np.allclose(alpha, 100.0)


def test_alpha_exponent_sweep_values():
    for exponent in (0.3, 0.5, 0.7, 0.9):  # Figure 4's x-axis
        hp = GMHyperParams(alpha_exponent=exponent)
        assert np.allclose(hp.dirichlet_alpha(81), 81.0**exponent)


def test_default_k_is_four():
    assert GMHyperParams().n_components == 4


@pytest.mark.parametrize("kwargs", [
    {"n_components": 0},
    {"gamma": 0.0},
    {"a_scale": -0.1},
    {"alpha_exponent": -1.0},
])
def test_invalid_hyperparams_rejected(kwargs):
    with pytest.raises(ValueError):
        GMHyperParams(**kwargs)


def test_dimension_validation():
    hp = GMHyperParams()
    with pytest.raises(ValueError):
        hp.gamma_rate(0)
    with pytest.raises(ValueError):
        hp.dirichlet_alpha(0)
