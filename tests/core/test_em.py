"""Unit tests for the EM update formulas (Equations (13) and (17))."""

import numpy as np

from repro.core import (
    GaussianMixture,
    em_step,
    gm_loss_terms,
    update_mixing_coefficients,
    update_precisions,
)
from repro.core.em import merge_similar_components


def make_mixture(pi, lam):
    return GaussianMixture(pi=np.asarray(pi), lam=np.asarray(lam))


def test_precision_update_closed_form_single_component():
    # With one component responsibilities are all 1: Eq (13) reduces to
    # lambda = (2(a-1) + M) / (2b + sum w^2).
    w = np.array([0.1, -0.2, 0.3])
    resp = np.ones((3, 1))
    a, b = 1.5, 0.4
    lam = update_precisions(resp, w, a=a, b=b)
    expected = (2 * 0.5 + 3) / (2 * 0.4 + np.sum(w**2))
    assert np.isclose(lam[0], expected)


def test_precision_update_is_positive_and_clipped(rng):
    w = np.zeros(10)  # degenerate weights
    resp = np.ones((10, 1))
    lam = update_precisions(resp, w, a=1.0, b=0.0)
    assert np.all(lam > 0)
    assert np.all(np.isfinite(lam))


def test_gamma_prior_caps_precision():
    # Larger b pulls the learned precision down (Section II-C).
    w = np.full(100, 0.01)
    resp = np.ones((100, 1))
    lam_small_b = update_precisions(resp, w, a=1.0, b=0.01)[0]
    lam_large_b = update_precisions(resp, w, a=1.0, b=10.0)[0]
    assert lam_large_b < lam_small_b


def test_mixing_update_matches_equation_17():
    # alpha = 1 reduces Eq (17) to responsibility fractions.
    resp = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
    pi = update_mixing_coefficients(resp, alpha=np.array([1.0, 1.0]))
    assert np.allclose(pi, [2.5 / 4.0, 1.5 / 4.0])


def test_mixing_update_on_simplex(rng):
    resp = rng.dirichlet(np.ones(3), size=50)
    pi = update_mixing_coefficients(resp, alpha=np.array([0.5, 0.5, 0.5]))
    assert np.isclose(pi.sum(), 1.0)
    assert np.all(pi >= 0.0)


def test_alpha_below_one_prunes_empty_components():
    # A component with zero responsibility and alpha < 1 goes negative
    # in Eq (17)'s numerator and must be pruned to exactly zero.
    resp = np.zeros((10, 2))
    resp[:, 0] = 1.0
    pi = update_mixing_coefficients(resp, alpha=np.array([0.5, 0.5]))
    assert pi[1] == 0.0
    assert np.isclose(pi.sum(), 1.0)


def test_pruning_disabled_floors_instead():
    resp = np.zeros((10, 2))
    resp[:, 0] = 1.0
    pi = update_mixing_coefficients(
        resp, alpha=np.array([0.5, 0.5]), prune=False
    )
    assert pi[1] > 0.0


def test_large_alpha_pulls_towards_uniform():
    resp = np.zeros((10, 2))
    resp[:, 0] = 1.0
    pi = update_mixing_coefficients(resp, alpha=np.array([1000.0, 1000.0]))
    assert abs(pi[0] - pi[1]) < 0.01


def test_merge_similar_components_merges_equal_precisions():
    pi, lam = merge_similar_components(
        np.array([0.3, 0.3, 0.4]), np.array([5.0, 5.001, 100.0])
    )
    assert lam.size == 2
    assert np.isclose(pi[0], 0.6)
    assert np.isclose(pi.sum(), 1.0)


def test_merge_keeps_distinct_components():
    pi, lam = merge_similar_components(
        np.array([0.5, 0.5]), np.array([1.0, 100.0])
    )
    assert lam.size == 2


def test_merge_sorts_by_precision():
    pi, lam = merge_similar_components(
        np.array([0.7, 0.3]), np.array([50.0, 1.0])
    )
    assert lam[0] < lam[1]
    assert np.isclose(pi[0], 0.3)


def test_em_step_collapses_four_components_to_two(rng):
    # The paper's K=4 -> 1-2 components observation on bimodal weights.
    w = np.concatenate([rng.normal(0, 0.02, 900), rng.normal(0, 0.5, 100)])
    mixture = make_mixture([0.25] * 4, [10.0, 20.0, 30.0, 40.0])
    alpha = np.full(4, np.sqrt(1000.0))
    for _ in range(100):
        k = mixture.n_components
        mixture = em_step(mixture, w, alpha=alpha[:k], a=1.05, b=5.0)
    assert mixture.n_components == 2
    # High-precision component carries most of the mass (900 noisy dims).
    high = np.argmax(mixture.lam)
    assert mixture.pi[high] > 0.7


def test_em_step_reduces_loss(rng):
    w = np.concatenate([rng.normal(0, 0.05, 500), rng.normal(0, 0.8, 50)])
    mixture = make_mixture([0.25] * 4, [10.0, 20.0, 30.0, 40.0])
    alpha = np.full(4, 1.0)
    loss_before = gm_loss_terms(mixture, w, alpha, a=1.0, b=1.0)
    for _ in range(30):
        k = mixture.n_components
        mixture = em_step(mixture, w, alpha=alpha[:k], a=1.0, b=1.0)
    loss_after = gm_loss_terms(mixture, w, alpha[: mixture.n_components],
                               a=1.0, b=1.0)
    assert loss_after < loss_before


def test_em_step_with_single_component_stays_valid(rng):
    w = rng.normal(0, 0.1, 200)
    mixture = make_mixture([1.0], [10.0])
    out = em_step(mixture, w, alpha=np.array([1.0]), a=1.0, b=1.0)
    assert out.n_components == 1
    assert np.isclose(out.pi[0], 1.0)


def test_em_fixed_point_precision_tracks_weight_scale(rng):
    # For Gaussian weights with one component and weak priors the learned
    # precision should approximate 1/var(w).
    std = 0.2
    w = rng.normal(0, std, 5000)
    mixture = make_mixture([1.0], [1.0])
    out = em_step(mixture, w, alpha=np.array([1.0]), a=1.0, b=1e-6)
    assert np.isclose(out.lam[0], 1.0 / std**2, rtol=0.1)
