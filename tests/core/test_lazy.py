"""Unit tests for the lazy-update schedule (Algorithm 2 decision logic)."""

import pytest

from repro.core import LazyUpdateSchedule


def test_default_schedule_is_eager_within_warmup():
    sched = LazyUpdateSchedule()
    assert not sched.is_lazy
    assert sched.should_update_reg_gradient(iteration=17, epoch=0)
    assert sched.should_update_gm(iteration=17, epoch=0)


def test_eager_epochs_update_every_iteration():
    sched = LazyUpdateSchedule(model_interval=50, gm_interval=50, eager_epochs=2)
    for it in range(10):
        assert sched.should_update_reg_gradient(it, epoch=0)
        assert sched.should_update_reg_gradient(it, epoch=1)


def test_lazy_epochs_update_on_interval_only():
    sched = LazyUpdateSchedule(model_interval=5, gm_interval=10, eager_epochs=1)
    assert sched.should_update_reg_gradient(100, epoch=3)
    assert not sched.should_update_reg_gradient(101, epoch=3)
    assert sched.should_update_gm(100, epoch=3)
    assert not sched.should_update_gm(105, epoch=3)


def test_zero_eager_epochs_lazy_from_start():
    sched = LazyUpdateSchedule(model_interval=4, gm_interval=4, eager_epochs=0)
    assert sched.should_update_reg_gradient(0, epoch=0)  # it % 4 == 0
    assert not sched.should_update_reg_gradient(1, epoch=0)


def test_is_lazy_flag():
    assert LazyUpdateSchedule(model_interval=2).is_lazy
    assert LazyUpdateSchedule(gm_interval=2).is_lazy
    assert not LazyUpdateSchedule().is_lazy


@pytest.mark.parametrize("field,value", [
    ("model_interval", 0), ("gm_interval", 0), ("eager_epochs", -1),
])
def test_invalid_parameters_rejected(field, value):
    kwargs = {field: value}
    with pytest.raises(ValueError):
        LazyUpdateSchedule(**kwargs)


def test_negative_counters_rejected():
    sched = LazyUpdateSchedule()
    with pytest.raises(ValueError):
        sched.should_update_reg_gradient(-1, 0)
    with pytest.raises(ValueError):
        sched.should_update_gm(0, -1)


def test_expected_estep_fraction_eager():
    sched = LazyUpdateSchedule(model_interval=1, eager_epochs=0)
    assert sched.expected_estep_fraction(10, 10) == 1.0


def test_expected_estep_fraction_mixed():
    # 2 eager epochs out of 10, interval 5 afterwards:
    # (2*B + 8*B/5) / (10*B) = (2 + 1.6) / 10 = 0.36
    sched = LazyUpdateSchedule(model_interval=5, eager_epochs=2)
    assert abs(sched.expected_estep_fraction(20, 10) - 0.36) < 1e-12


def test_expected_estep_fraction_validates_inputs():
    sched = LazyUpdateSchedule()
    with pytest.raises(ValueError):
        sched.expected_estep_fraction(0, 5)


# ----------------------------------------------------------------------
# Edge cases: interval 1, exact warm-up boundary, coprime Im/Ig
# ----------------------------------------------------------------------
def test_interval_one_updates_every_step_even_after_warmup():
    # Im = Ig = 1 must degenerate to eager Algorithm 1 regardless of E.
    sched = LazyUpdateSchedule(model_interval=1, gm_interval=1, eager_epochs=2)
    for epoch in (0, 1, 2, 5, 100):
        for it in range(25):
            assert sched.should_update_reg_gradient(it, epoch)
            assert sched.should_update_gm(it, epoch)
    assert not sched.is_lazy
    assert sched.expected_estep_fraction(10, 10) == 1.0


def test_warmup_boundary_epoch_exactly_e():
    # Epochs are 0-based: epoch E-1 is the last eager epoch, epoch E the
    # first lazy one ("epoch < E" in Algorithm 2 line 4).
    e = 3
    sched = LazyUpdateSchedule(model_interval=7, gm_interval=7, eager_epochs=e)
    assert sched.should_update_reg_gradient(10, epoch=e - 1)
    assert sched.should_update_gm(10, epoch=e - 1)
    assert not sched.should_update_reg_gradient(10, epoch=e)
    assert not sched.should_update_gm(10, epoch=e)
    # On the interval the lazy epoch still fires.
    assert sched.should_update_reg_gradient(14, epoch=e)
    assert sched.should_update_gm(14, epoch=e)


def test_coprime_im_ig_interaction():
    # Im = 3, Ig = 5 (coprime): E- and M-steps coincide only at
    # iterations divisible by lcm(3, 5) = 15.
    sched = LazyUpdateSchedule(model_interval=3, gm_interval=5, eager_epochs=0)
    esteps = {it for it in range(30) if sched.should_update_reg_gradient(it, 1)}
    msteps = {it for it in range(30) if sched.should_update_gm(it, 1)}
    assert esteps == {0, 3, 6, 9, 12, 15, 18, 21, 24, 27}
    assert msteps == {0, 5, 10, 15, 20, 25}
    assert esteps & msteps == {0, 15}
    # Neither decision gates the other: an M-step can run on an
    # iteration whose E-step is skipped (it=5) and vice versa (it=3).
    assert not sched.should_update_reg_gradient(5, 1)
    assert sched.should_update_gm(5, 1)
    assert sched.should_update_reg_gradient(3, 1)
    assert not sched.should_update_gm(3, 1)
