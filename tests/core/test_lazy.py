"""Unit tests for the lazy-update schedule (Algorithm 2 decision logic)."""

import pytest

from repro.core import LazyUpdateSchedule


def test_default_schedule_is_eager_within_warmup():
    sched = LazyUpdateSchedule()
    assert not sched.is_lazy
    assert sched.should_update_reg_gradient(iteration=17, epoch=0)
    assert sched.should_update_gm(iteration=17, epoch=0)


def test_eager_epochs_update_every_iteration():
    sched = LazyUpdateSchedule(model_interval=50, gm_interval=50, eager_epochs=2)
    for it in range(10):
        assert sched.should_update_reg_gradient(it, epoch=0)
        assert sched.should_update_reg_gradient(it, epoch=1)


def test_lazy_epochs_update_on_interval_only():
    sched = LazyUpdateSchedule(model_interval=5, gm_interval=10, eager_epochs=1)
    assert sched.should_update_reg_gradient(100, epoch=3)
    assert not sched.should_update_reg_gradient(101, epoch=3)
    assert sched.should_update_gm(100, epoch=3)
    assert not sched.should_update_gm(105, epoch=3)


def test_zero_eager_epochs_lazy_from_start():
    sched = LazyUpdateSchedule(model_interval=4, gm_interval=4, eager_epochs=0)
    assert sched.should_update_reg_gradient(0, epoch=0)  # it % 4 == 0
    assert not sched.should_update_reg_gradient(1, epoch=0)


def test_is_lazy_flag():
    assert LazyUpdateSchedule(model_interval=2).is_lazy
    assert LazyUpdateSchedule(gm_interval=2).is_lazy
    assert not LazyUpdateSchedule().is_lazy


@pytest.mark.parametrize("field,value", [
    ("model_interval", 0), ("gm_interval", 0), ("eager_epochs", -1),
])
def test_invalid_parameters_rejected(field, value):
    kwargs = {field: value}
    with pytest.raises(ValueError):
        LazyUpdateSchedule(**kwargs)


def test_negative_counters_rejected():
    sched = LazyUpdateSchedule()
    with pytest.raises(ValueError):
        sched.should_update_reg_gradient(-1, 0)
    with pytest.raises(ValueError):
        sched.should_update_gm(0, -1)


def test_expected_estep_fraction_eager():
    sched = LazyUpdateSchedule(model_interval=1, eager_epochs=0)
    assert sched.expected_estep_fraction(10, 10) == 1.0


def test_expected_estep_fraction_mixed():
    # 2 eager epochs out of 10, interval 5 afterwards:
    # (2*B + 8*B/5) / (10*B) = (2 + 1.6) / 10 = 0.36
    sched = LazyUpdateSchedule(model_interval=5, eager_epochs=2)
    assert abs(sched.expected_estep_fraction(20, 10) - 0.36) < 1e-12


def test_expected_estep_fraction_validates_inputs():
    sched = LazyUpdateSchedule()
    with pytest.raises(ValueError):
        sched.expected_estep_fraction(0, 5)
