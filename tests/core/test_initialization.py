"""Unit tests for GM initialization strategies (Section V-E)."""

import numpy as np
import pytest

from repro.core import (
    base_precision_from_weight_init,
    identical_precisions,
    initialize_mixture,
    linear_precisions,
    proportional_precisions,
)


def test_base_precision_is_tenth_of_init_precision():
    # Paper: init precision 100 (std 0.1) -> min = 10.
    assert np.isclose(base_precision_from_weight_init(0.1), 10.0)


def test_base_precision_rejects_nonpositive():
    with pytest.raises(ValueError):
        base_precision_from_weight_init(0.0)


def test_identical_all_equal():
    lam = identical_precisions(10.0, 4)
    assert np.allclose(lam, 10.0)


def test_linear_spacing_endpoints():
    lam = linear_precisions(10.0, 4)
    assert np.isclose(lam[0], 10.0)
    assert np.isclose(lam[-1], 40.0)
    assert np.allclose(np.diff(lam), 10.0)


def test_linear_single_component():
    assert np.allclose(linear_precisions(5.0, 1), [5.0])


def test_proportional_doubles():
    lam = proportional_precisions(10.0, 4)
    assert np.allclose(lam, [10.0, 20.0, 40.0, 80.0])


def test_initialize_mixture_uniform_pi():
    gm = initialize_mixture(4, 10.0, method="linear")
    assert np.allclose(gm.pi, 0.25)
    assert gm.n_components == 4


@pytest.mark.parametrize("method", ["identical", "linear", "proportional"])
def test_all_methods_start_at_base(method):
    gm = initialize_mixture(3, 7.0, method=method)
    assert np.isclose(gm.lam.min(), 7.0)


def test_unknown_method_rejected():
    with pytest.raises(ValueError):
        initialize_mixture(4, 10.0, method="random")


def test_invalid_base_rejected():
    with pytest.raises(ValueError):
        initialize_mixture(4, -1.0, method="linear")


def test_linear_and_proportional_give_distinct_precisions():
    # Section V-E: these two make initial responsibilities differ across
    # components, which is why they beat identical initialization.
    for method in ("linear", "proportional"):
        gm = initialize_mixture(4, 10.0, method=method)
        assert np.unique(gm.lam).size == 4
