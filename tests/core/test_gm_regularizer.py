"""Unit tests for the adaptive GM regularizer (the paper's tool)."""

import numpy as np
import pytest

from repro.core import GMHyperParams, GMRegularizer, LazyUpdateSchedule


@pytest.fixture
def bimodal_w(rng):
    """Weights with the signal/noise split of Section V-A."""
    return np.concatenate(
        [rng.normal(0, 0.02, 900), rng.normal(0, 0.5, 100)]
    )


def test_reg_gradient_matches_equation_10(rng):
    reg = GMRegularizer(n_dimensions=50, weight_init_std=0.1)
    w = rng.normal(0, 0.1, 50)
    resp = reg.cal_responsibility(w)
    expected = (resp @ reg.lam) * w
    assert np.allclose(reg.calc_reg_grad(w), expected)


def test_gradient_preserves_shape(rng):
    reg = GMRegularizer(n_dimensions=12, weight_init_std=0.1)
    w = rng.normal(0, 0.1, size=(3, 4))
    grad = reg.gradient(w)
    assert grad.shape == (3, 4)


def test_dimension_mismatch_rejected(rng):
    reg = GMRegularizer(n_dimensions=10)
    with pytest.raises(ValueError):
        reg.calc_reg_grad(rng.normal(size=11))


def test_em_learns_two_components_from_bimodal(bimodal_w):
    reg = GMRegularizer(n_dimensions=1000, weight_init_std=0.1)
    for it in range(200):
        reg.prepare(bimodal_w, it)
        reg.update(bimodal_w, it)
    assert reg.mixture.n_components == 2
    # Most of the mass sits on the high-precision (noise) component.
    assert reg.pi[np.argmax(reg.lam)] > 0.7


def test_adaptive_strength_small_vs_large_weights(bimodal_w):
    reg = GMRegularizer(n_dimensions=1000, weight_init_std=0.1)
    for it in range(100):
        reg.prepare(bimodal_w, it)
        reg.update(bimodal_w, it)
    grad = reg.calc_reg_grad(bimodal_w)
    eff_precision = np.abs(grad / bimodal_w)
    # Weights that are genuinely small get strong regularization; weights
    # beyond the learned crossover get the weak low-precision component.
    small = np.abs(bimodal_w) < 0.05
    large = np.abs(bimodal_w) > 0.5
    assert small.any() and large.any()
    assert eff_precision[small].mean() > 5.0 * eff_precision[large].mean()


def test_lazy_schedule_skips_esteps(bimodal_w):
    sched = LazyUpdateSchedule(model_interval=10, gm_interval=10, eager_epochs=0)
    reg = GMRegularizer(n_dimensions=1000, schedule=sched)
    for it in range(100):
        reg.prepare(bimodal_w, it)
        reg.gradient(bimodal_w)
        reg.update(bimodal_w, it)
    # Only iterations divisible by 10 ran the E/M steps.
    assert reg.estep_count == 10
    assert reg.mstep_count == 10


def test_eager_schedule_runs_every_step(bimodal_w):
    reg = GMRegularizer(n_dimensions=1000)
    for it in range(20):
        reg.prepare(bimodal_w, it)
        reg.update(bimodal_w, it)
    assert reg.estep_count == 20
    assert reg.mstep_count == 20


def test_cached_gradient_reused_between_esteps(rng):
    sched = LazyUpdateSchedule(model_interval=100, gm_interval=100, eager_epochs=0)
    reg = GMRegularizer(n_dimensions=50, schedule=sched)
    w1 = rng.normal(0, 0.1, 50)
    reg.prepare(w1, 0)
    g1 = reg.gradient(w1)
    w2 = rng.normal(0, 0.1, 50)
    reg.prepare(w2, 1)  # not due: cache kept
    g2 = reg.gradient(w2)
    assert np.array_equal(g1, g2)


def test_epoch_end_reactivates_lazy_logic(bimodal_w):
    sched = LazyUpdateSchedule(model_interval=7, gm_interval=7, eager_epochs=1)
    reg = GMRegularizer(n_dimensions=1000, schedule=sched)
    for it in range(10):  # epoch 0: eager
        reg.prepare(bimodal_w, it)
    assert reg.estep_count == 10
    reg.epoch_end(0)
    for it in range(10, 20):  # epoch 1: lazy, only it=14 hits 7 | it
        reg.prepare(bimodal_w, it)
    assert reg.estep_count == 11


def test_first_gradient_without_prepare_works(rng):
    reg = GMRegularizer(n_dimensions=20)
    w = rng.normal(0, 0.1, 20)
    grad = reg.gradient(w)
    assert np.all(np.isfinite(grad))


def test_penalty_is_negative_log_prior(rng):
    reg = GMRegularizer(n_dimensions=30)
    w = rng.normal(0, 0.1, 30)
    assert np.isclose(reg.penalty(w), -reg.mixture.log_pdf(w).sum())


def test_merge_disabled_keeps_components(bimodal_w):
    reg = GMRegularizer(
        n_dimensions=1000, merge_components=False, prune_components=False
    )
    for it in range(100):
        reg.update(bimodal_w, it)
    assert reg.mixture.n_components == 4


def test_custom_hyperparams_respected():
    hp = GMHyperParams(n_components=2, gamma=0.01, alpha_exponent=0.3)
    reg = GMRegularizer(n_dimensions=100, hyperparams=hp)
    assert reg.mixture.n_components == 2
    assert np.isclose(reg._b, 1.0)  # gamma * M


def test_regularization_loss_finite(bimodal_w):
    reg = GMRegularizer(n_dimensions=1000)
    for it in range(50):
        reg.update(bimodal_w, it)
    assert np.isfinite(reg.regularization_loss(bimodal_w))


def test_invalid_dimensions_rejected():
    with pytest.raises(ValueError):
        GMRegularizer(n_dimensions=0)


def test_init_method_forwarded():
    reg = GMRegularizer(n_dimensions=10, init_method="proportional")
    assert np.allclose(reg.lam, 10.0 * np.array([1.0, 2.0, 4.0, 8.0]))
