"""Unit tests for the zero-mean Gaussian Mixture value object."""

import math

import numpy as np
import pytest

from repro.core import GaussianMixture, log_normal_pdf


def test_log_normal_pdf_matches_closed_form():
    x = np.array([0.0, 1.0, -2.0])
    precision = 4.0
    expected = (
        0.5 * math.log(precision)
        - 0.5 * math.log(2 * math.pi)
        - 0.5 * precision * x**2
    )
    assert np.allclose(log_normal_pdf(x, precision), expected)


def test_log_normal_pdf_rejects_nonpositive_precision():
    with pytest.raises(ValueError):
        log_normal_pdf(np.array([0.0]), 0.0)
    with pytest.raises(ValueError):
        log_normal_pdf(np.array([0.0]), -1.0)


def test_mixture_validates_simplex():
    with pytest.raises(ValueError):
        GaussianMixture(pi=np.array([0.5, 0.6]), lam=np.array([1.0, 2.0]))
    with pytest.raises(ValueError):
        GaussianMixture(pi=np.array([-0.1, 1.1]), lam=np.array([1.0, 2.0]))


def test_mixture_validates_precisions():
    with pytest.raises(ValueError):
        GaussianMixture(pi=np.array([0.5, 0.5]), lam=np.array([1.0, -2.0]))
    with pytest.raises(ValueError):
        GaussianMixture(pi=np.array([0.5, 0.5]), lam=np.array([1.0, np.inf]))


def test_mixture_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        GaussianMixture(pi=np.array([1.0]), lam=np.array([1.0, 2.0]))


def test_pdf_integrates_to_one():
    gm = GaussianMixture(pi=np.array([0.3, 0.7]), lam=np.array([0.5, 50.0]))
    grid = np.linspace(-20, 20, 200001)
    density = gm.pdf(grid)
    total = float(np.sum((density[1:] + density[:-1]) * 0.5 * np.diff(grid)))
    assert abs(total - 1.0) < 1e-4


def test_single_component_pdf_is_gaussian():
    gm = GaussianMixture(pi=np.array([1.0]), lam=np.array([4.0]))
    x = np.array([0.0, 0.5, -1.0])
    assert np.allclose(gm.log_pdf(x), log_normal_pdf(x, 4.0))


def test_responsibilities_rows_sum_to_one(rng):
    gm = GaussianMixture(
        pi=np.array([0.2, 0.3, 0.5]), lam=np.array([0.1, 10.0, 1000.0])
    )
    w = rng.normal(0, 1.0, size=500)
    resp = gm.responsibilities(w)
    assert resp.shape == (500, 3)
    assert np.allclose(resp.sum(axis=1), 1.0)
    assert np.all(resp >= 0.0)


def test_responsibilities_favor_high_precision_near_zero():
    gm = GaussianMixture(pi=np.array([0.5, 0.5]), lam=np.array([1.0, 100.0]))
    near_zero = gm.responsibilities(np.array([0.01]))
    far = gm.responsibilities(np.array([3.0]))
    # Component 1 (precision 100) dominates near zero, component 0 far out.
    assert near_zero[0, 1] > 0.9
    assert far[0, 0] > 0.99


def test_responsibilities_stable_with_extreme_precision():
    gm = GaussianMixture(pi=np.array([0.5, 0.5]), lam=np.array([1e-6, 1e10]))
    resp = gm.responsibilities(np.array([0.0, 100.0, -100.0]))
    assert np.all(np.isfinite(resp))
    assert np.allclose(resp.sum(axis=1), 1.0)


def test_sampling_matches_moments(rng):
    gm = GaussianMixture(pi=np.array([0.5, 0.5]), lam=np.array([1.0, 100.0]))
    samples = gm.sample(200000, rng)
    # Mixture variance = sum pi_k / lam_k.
    expected_var = 0.5 * 1.0 + 0.5 * 0.01
    assert abs(samples.mean()) < 0.01
    assert abs(samples.var() - expected_var) < 0.02


def test_sample_rejects_negative_size(rng):
    gm = GaussianMixture(pi=np.array([1.0]), lam=np.array([1.0]))
    with pytest.raises(ValueError):
        gm.sample(-1, rng)


def test_effective_components_counts_above_tolerance():
    gm = GaussianMixture(
        pi=np.array([0.0005, 0.9995]), lam=np.array([1.0, 2.0])
    )
    assert gm.effective_components(tol=1e-3) == 1
    assert gm.effective_components(tol=1e-4) == 2


def test_crossover_points_two_components():
    # Equal weights: crossing where sqrt(l2)exp(-l2 x^2/2)=sqrt(l1)exp(-l1 x^2/2)
    gm = GaussianMixture(pi=np.array([0.5, 0.5]), lam=np.array([1.0, 100.0]))
    points = gm.crossover_points()
    assert points.size == 1
    x = points[0]
    dens = np.exp(gm.component_log_pdf(np.array([x]))) * gm.pi
    assert np.isclose(dens[0, 0], dens[0, 1], rtol=1e-9)


def test_crossover_points_single_component_empty():
    gm = GaussianMixture(pi=np.array([1.0]), lam=np.array([5.0]))
    assert gm.crossover_points().size == 0


def test_mixing_coefficients_renormalized_exactly():
    # Slightly off-simplex input within tolerance is renormalized.
    gm = GaussianMixture(
        pi=np.array([0.3333333, 0.6666666]), lam=np.array([1.0, 2.0])
    )
    assert math.isclose(gm.pi.sum(), 1.0, abs_tol=1e-15)


def test_variances_are_inverse_precisions():
    gm = GaussianMixture(pi=np.array([0.5, 0.5]), lam=np.array([4.0, 0.25]))
    assert np.allclose(gm.variances, [0.25, 4.0])
    assert np.allclose(gm.component_std(), [0.5, 2.0])
