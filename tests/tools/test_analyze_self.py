"""Self-check: the repository's own source must analyze clean.

Same invocation CI runs (``python -m repro.tools.analyze src/``): zero
unsuppressed GUARD-VIOLATION findings and zero LOCK-ORDER-CYCLE
findings.  False positives are suppressed inline with a justification
comment — the analyzer keeps no baseline debt on src/.
"""

from pathlib import Path

import pytest

from repro.tools.analyze import run_analysis

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture()
def repo_cwd(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    return REPO_ROOT


def test_src_tree_analyzes_clean(repo_cwd):
    result = run_analysis(["src"])
    rendered = "\n".join(f.render() for f in result.all_findings())
    assert result.clean, f"fresh concurrency findings on src/:\n{rendered}"
    assert result.files_checked > 50


def test_src_lock_graph_is_acyclic(repo_cwd):
    result = run_analysis(["src"])
    cycles = result.graph.cycles()
    assert cycles == [], (
        "lock-order cycles in src/: "
        + "; ".join(
            " -> ".join(n.label for n in cycle) for cycle in cycles
        )
    )
    # The graph is non-trivial: the serving tier's nested acquisitions
    # must be visible to the analysis for the acyclicity claim to mean
    # anything.
    assert len(result.graph.nodes) >= 10
    assert len(result.graph.edges) >= 3


def test_suppressions_carry_justification(repo_cwd):
    # Every inline analyzer suppression must sit next to prose saying
    # why the access is safe — a bare disable comment is just debt.
    for finding in run_analysis(["src"]).suppressed:
        source = Path(finding.path).read_text().splitlines()
        start = max(0, finding.line - 4)
        window = "\n".join(source[start:finding.line])
        comment_lines = [
            line
            for line in window.splitlines()
            if line.strip().startswith("#")
        ]
        assert comment_lines, (
            f"{finding.path}:{finding.line} suppresses "
            f"{finding.rule} without a justification comment"
        )
