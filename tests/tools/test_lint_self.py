"""Self-check: the repository's own source must lint clean.

This is the same invocation CI runs (``python -m repro.tools.lint
src/``): zero fresh findings, with deliberate exceptions recorded and
justified in ``.reprolint-baseline.json``.
"""

import json
from pathlib import Path

import pytest

from repro.tools.lint import Baseline, DEFAULT_BASELINE_NAME, default_rules, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture()
def repo_cwd(monkeypatch):
    # Findings and baseline entries use repo-root-relative paths.
    monkeypatch.chdir(REPO_ROOT)
    return REPO_ROOT


def test_src_tree_has_zero_nonbaselined_findings(repo_cwd):
    baseline = Baseline.load_default(str(repo_cwd))
    result = run_lint(["src"], default_rules(), baseline=baseline)
    rendered = "\n".join(f.render() for f in result.all_findings())
    assert result.clean, f"fresh lint findings on src/:\n{rendered}"
    assert result.files_checked > 50


def test_baseline_entries_are_justified_and_consumed(repo_cwd):
    path = repo_cwd / DEFAULT_BASELINE_NAME
    payload = json.loads(path.read_text())
    assert payload["tool"] == "repro.tools.lint"
    for entry in payload["entries"]:
        assert entry["justification"].strip(), (
            f"baseline entry {entry['fingerprint']} has no justification"
        )
        assert "TODO" not in entry["justification"]

    # Every baseline entry must still correspond to a real finding —
    # stale entries mean the debt was paid and the entry should go.
    baseline = Baseline.load_default(str(repo_cwd))
    result = run_lint(["src"], default_rules(), baseline=baseline)
    assert len(result.baselined) == sum(
        e["count"] for e in payload["entries"]
    )


def test_no_legacy_global_numpy_rng_in_src(repo_cwd):
    # Mirrors the acceptance grep:
    #   grep -rn "np\.random\.\(seed\|rand\|randn\|randint\)" src/
    offenders = []
    for py in sorted((repo_cwd / "src").rglob("*.py")):
        for lineno, line in enumerate(py.read_text().splitlines(), start=1):
            for fragment in (
                "np.random.seed(",
                "np.random.rand(",
                "np.random.randn(",
                "np.random.randint(",
            ):
                if fragment in line:
                    offenders.append(f"{py}:{lineno}: {line.strip()}")
    assert offenders == [], "\n".join(offenders)
