"""Engine plumbing: suppressions, baselines, CLI exit codes, JSON."""

import json
import textwrap

import pytest

from repro.tools.lint import (
    Baseline,
    DEFAULT_BASELINE_NAME,
    fingerprint,
    lint_source,
    run_lint,
)
from repro.tools.lint.cli import main
from repro.tools.lint.engine import LintContext, collect_python_files
from repro.tools.lint.rules import AssertRuntimeRule, default_rules

BAD_SNIPPET = textwrap.dedent(
    """
    import numpy as np

    def sample():
        np.random.seed(0)
        return np.random.rand(3)
    """
)


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_named_rule_suppressed_on_its_line(self):
        source = (
            "def f(x):\n"
            "    assert x > 0  # reprolint: disable=ASSERT-RUNTIME\n"
            "    return x\n"
        )
        assert lint_source(source, [AssertRuntimeRule()]) == []

    def test_suppression_is_per_line(self):
        source = (
            "def f(x):\n"
            "    assert x > 0  # reprolint: disable=ASSERT-RUNTIME\n"
            "    assert x < 9\n"
        )
        found = lint_source(source, [AssertRuntimeRule()])
        assert [f.line for f in found] == [3]

    def test_disable_all(self):
        source = "def f(x):\n    assert x  # reprolint: disable=all\n"
        assert lint_source(source, default_rules()) == []

    def test_wrong_rule_name_does_not_suppress(self):
        source = (
            "def f(x):\n"
            "    assert x  # reprolint: disable=BARE-EXCEPT\n"
        )
        found = lint_source(source, [AssertRuntimeRule()])
        assert len(found) == 1

    def test_justification_suffix_tolerated(self):
        source = (
            "def f(x):\n"
            "    assert x  # reprolint: disable=ASSERT-RUNTIME -- hot loop\n"
        )
        assert lint_source(source, [AssertRuntimeRule()]) == []


# ----------------------------------------------------------------------
# Fingerprints and baselines
# ----------------------------------------------------------------------
class TestBaseline:
    def test_fingerprint_survives_line_drift(self):
        shifted = "\n\n\n" + BAD_SNIPPET
        original = lint_source(BAD_SNIPPET, default_rules(), path="mod.py")
        moved = lint_source(shifted, default_rules(), path="mod.py")
        assert [f.line for f in original] != [f.line for f in moved]
        assert [fingerprint(f) for f in original] == [
            fingerprint(f) for f in moved
        ]

    def test_fingerprint_depends_on_path_and_rule(self):
        a = lint_source(BAD_SNIPPET, default_rules(), path="a.py")
        b = lint_source(BAD_SNIPPET, default_rules(), path="b.py")
        assert fingerprint(a[0]) != fingerprint(b[0])

    def test_baseline_round_trip_absorbs_findings(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(BAD_SNIPPET)
        baseline = Baseline.from_findings(
            run_lint([str(target)], default_rules()).findings
        )
        assert len(baseline.entries) == 2

        path = tmp_path / DEFAULT_BASELINE_NAME
        baseline.dump(str(path))
        reloaded = Baseline.load(str(path))

        result = run_lint([str(target)], default_rules(), baseline=reloaded)
        assert result.findings == []
        assert len(result.baselined) == 2
        assert result.clean

    def test_count_budget_blocks_duplicates(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(BAD_SNIPPET)
        baseline = Baseline.from_findings(
            run_lint([str(target)], default_rules()).findings
        )

        # Duplicate the offending body: same source lines, same
        # fingerprints, but each entry's budget only covers one hit.
        target.write_text(
            BAD_SNIPPET
            + textwrap.dedent(
                """
                def sample_again():
                    np.random.seed(0)
                    return np.random.rand(3)
                """
            )
        )
        result = run_lint([str(target)], default_rules(), baseline=baseline)
        assert len(result.baselined) == 2
        assert len(result.findings) == 2
        assert not result.clean

    def test_missing_default_baseline_is_empty(self, tmp_path):
        baseline = Baseline.load_default(str(tmp_path))
        assert baseline.entries == []


# ----------------------------------------------------------------------
# File collection and module inference
# ----------------------------------------------------------------------
class TestDiscovery:
    def test_collect_skips_hidden_and_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "ok.cpython-311.py").write_text("")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "no.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not python\n")

        files = collect_python_files([str(tmp_path)])
        assert [f for f in files if "__pycache__" in f] == []
        assert [f for f in files if ".hidden" in f] == []
        assert len(files) == 1 and files[0].endswith("ok.py")

    def test_collect_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_python_files([str(tmp_path / "nope")])

    def test_module_inference_walks_init_chain(self, tmp_path):
        pkg = tmp_path / "mylib" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "mylib" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "leaf.py").write_text("x = 1\n")

        ctx = LintContext(str(pkg / "leaf.py"), "x = 1\n")
        assert ctx.module == "mylib.sub.leaf"
        assert ctx.in_package("mylib")
        assert ctx.in_package("mylib.sub")
        assert not ctx.in_package("mylib.subword")
        assert not ctx.in_package("other")

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        result = run_lint([str(broken)], default_rules())
        assert len(result.parse_errors) == 1
        assert result.parse_errors[0].rule == "SYNTAX-ERROR"
        assert not result.clean


# ----------------------------------------------------------------------
# CLI behaviour
# ----------------------------------------------------------------------
class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("def f(x):\n    return x + 1\n")
        code = main([str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 finding(s)" in out

    def test_findings_exit_one_with_rendered_lines(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_SNIPPET)
        code = main([str(bad), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "RNG-DETERMINISM" in out

    def test_json_report_shape(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_SNIPPET)
        code = main([str(bad), "--json", "--no-baseline"])
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["clean"] is False
        assert report["files_checked"] == 1
        assert {f["rule"] for f in report["findings"]} == {"RNG-DETERMINISM"}
        first = report["findings"][0]
        assert set(first) >= {
            "path",
            "line",
            "col",
            "rule",
            "message",
            "fingerprint",
        }

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_SNIPPET)
        baseline_path = tmp_path / DEFAULT_BASELINE_NAME

        code = main(
            [str(bad), "--baseline", str(baseline_path), "--write-baseline"]
        )
        assert code == 0
        assert baseline_path.is_file()
        capsys.readouterr()

        code = main([str(bad), "--baseline", str(baseline_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 baselined" in out

    def test_select_unknown_rule_is_usage_error(self, tmp_path, capsys):
        code = main([str(tmp_path), "--select", "NO-SUCH-RULE"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown rule" in err

    def test_select_runs_only_named_rule(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x):\n    assert x\n" + BAD_SNIPPET)
        code = main(
            [str(bad), "--select", "ASSERT-RUNTIME", "--no-baseline"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "ASSERT-RUNTIME" in out
        assert "RNG-DETERMINISM" not in out

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        code = main([str(tmp_path / "ghost")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        code = main(["--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        for name in (
            "RNG-DETERMINISM",
            "LOCK-DISCIPLINE",
            "TELEMETRY-COVERAGE",
        ):
            assert name in out
