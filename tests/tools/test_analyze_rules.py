"""Good/bad fixture pairs for the concurrency analyzer.

Each analysis gets at least one seeded-bad snippet that must produce
exactly the expected findings and the corrected snippet that must not.
Snippets are analyzed in memory via
:func:`repro.tools.analyze.analyze_source`; the src/ self-check lives
in ``test_analyze_self.py``.
"""

import textwrap

from repro.tools.analyze import (
    GUARD_VIOLATION,
    LOCK_ORDER_CYCLE,
    analyze_source,
    build_lock_graph,
)
from repro.tools.analyze.engine import analyze_contexts
from repro.tools.analyze.symbols import SymbolTable
from repro.tools.lint.engine import LintContext


def analyze(source, module="repro.fake"):
    return analyze_source(textwrap.dedent(source), module=module)


def rules_hit(result):
    return [f.rule for f in result.findings]


# ----------------------------------------------------------------------
# GUARD-VIOLATION
# ----------------------------------------------------------------------
class TestGuardViolation:
    BAD = """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0

            def set(self, v):
                with self._lock:
                    self.value = v

            def peek(self):
                return self.value

            def bump(self):
                self.value += 1
    """

    GOOD = """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0

            def set(self, v):
                with self._lock:
                    self.value = v

            def peek(self):
                with self._lock:
                    return self.value

            def _bump_locked(self):
                self.value += 1
    """

    def test_bad_yields_exactly_the_expected_findings(self):
        result = analyze(self.BAD)
        assert rules_hit(result) == [GUARD_VIOLATION, GUARD_VIOLATION]
        read, write = result.findings
        assert "`self.value` is guarded by `self._lock`" in read.message
        assert "read here without holding it" in read.message
        assert "written here without holding it" in write.message

    def test_good_is_clean(self):
        result = analyze(self.GOOD)
        assert result.findings == []

    def test_init_and_locked_helpers_are_exempt(self):
        # GOOD writes `value` in __init__ and in a *_locked helper with
        # no lock held; neither may count as a violation.
        result = analyze(self.GOOD)
        assert result.clean

    def test_wrong_lock_is_flagged(self):
        result = analyze(
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                    self.n = 0

                def set(self, v):
                    with self._a:
                        self.n = v

                def peek(self):
                    with self._b:
                        return self.n
            """
        )
        assert rules_hit(result) == [GUARD_VIOLATION]
        assert "under a different lock" in result.findings[0].message

    def test_mutator_calls_count_as_writes(self):
        result = analyze(
            """
            import threading

            class Q:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def put(self, x):
                    with self._lock:
                        self._items.append(x)

                def drop(self):
                    self._items.clear()
            """
        )
        assert rules_hit(result) == [GUARD_VIOLATION]
        assert "`self._items`" in result.findings[0].message

    def test_inline_suppression_is_honored(self):
        result = analyze(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0

                def set(self, v):
                    with self._lock:
                        self.value = v

                def peek(self):
                    return self.value  # reprolint: disable=GUARD-VIOLATION
            """
        )
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == [GUARD_VIOLATION]
        assert result.clean


# ----------------------------------------------------------------------
# LOCK-ORDER-CYCLE
# ----------------------------------------------------------------------
class TestLockOrderCycle:
    BAD_NESTED = """
        import threading

        class Pool:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()
                self.items = []

            def put(self, x):
                with self._a:
                    with self._b:
                        self.items.append(x)

            def drain(self):
                with self._b:
                    with self._a:
                        self.items.clear()
    """

    GOOD_NESTED = """
        import threading

        class Pool:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()
                self.items = []

            def put(self, x):
                with self._a:
                    with self._b:
                        self.items.append(x)

            def drain(self):
                with self._a:
                    with self._b:
                        self.items.clear()
    """

    def test_nested_with_inversion_is_a_cycle(self):
        result = analyze(self.BAD_NESTED)
        rules = rules_hit(result)
        assert rules == [LOCK_ORDER_CYCLE, LOCK_ORDER_CYCLE]
        assert len(result.graph.cycles()) == 1
        message = result.findings[0].message
        assert "can deadlock" in message
        assert "Pool._a" in message and "Pool._b" in message

    def test_consistent_order_is_clean(self):
        result = analyze(self.GOOD_NESTED)
        assert result.findings == []
        assert result.graph.cycles() == []
        # The order edges themselves are still in the graph (one per
        # acquisition site), all pointing the same way.
        assert {(e.src.label, e.dst.label) for e in result.graph.edges} == {
            ("Pool._a", "Pool._b")
        }

    def test_cross_class_call_edge_cycle(self):
        result = analyze(
            """
            import threading

            class Left:
                def __init__(self, right):
                    self._lock = threading.Lock()
                    self.right: "Right" = right
                    self.total = 0

                def poke(self):
                    with self._lock:
                        self.right.bump()

                def bump(self):
                    with self._lock:
                        self.total += 1

            class Right:
                def __init__(self, left: "Left"):
                    self._lock = threading.Lock()
                    self.left = left
                    self.total = 0

                def poke(self):
                    with self._lock:
                        self.left.bump()

                def bump(self):
                    with self._lock:
                        self.total += 1
            """
        )
        assert LOCK_ORDER_CYCLE in rules_hit(result)
        cycles = result.graph.cycles()
        assert len(cycles) == 1
        labels = {node.label for node in cycles[0]}
        assert labels == {"Left._lock", "Right._lock"}
        assert any(e.kind == "call" for e, _c in result.graph.cycle_edges())

    def test_reentrant_same_lock_is_not_an_edge(self):
        result = analyze(
            """
            import threading

            class R:
                def __init__(self):
                    self._lock = threading.RLock()
                    self.n = 0

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        self.n += 1
            """
        )
        assert result.findings == []
        assert result.graph.edges == []

    def test_dot_export_mentions_cycle_edges(self):
        result = analyze(self.BAD_NESTED)
        dot = result.graph.to_dot()
        assert dot.startswith("digraph lock_order {")
        assert '"Pool._a" -> "Pool._b"' in dot
        assert 'color="red"' in dot


# ----------------------------------------------------------------------
# Symbol table
# ----------------------------------------------------------------------
class TestSymbolTable:
    def test_cross_module_attribute_resolution(self):
        metrics_src = textwrap.dedent(
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def add(self, k, v):
                    with self._lock:
                        self._items[k] = v
            """
        )
        user_src = textwrap.dedent(
            """
            import threading
            from repro.fake.metrics import Registry

            class User:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.registry = Registry()

                def push(self, k, v):
                    with self._lock:
                        self.registry.add(k, v)
            """
        )
        contexts = [
            LintContext("m.py", metrics_src, module="repro.fake.metrics"),
            LintContext("u.py", user_src, module="repro.fake.user"),
        ]
        table = SymbolTable.build(contexts)
        user = table.classes["repro.fake.user.User"]
        target = table.attr_class(user, "registry")
        assert target is not None
        assert target.qualified == "repro.fake.metrics.Registry"
        graph = build_lock_graph(table)
        pairs = {(e.src.label, e.dst.label) for e in graph.edges}
        assert ("User._lock", "Registry._lock") in pairs
        assert graph.cycles() == []

    def test_guarded_attrs_union_of_locks(self):
        ctx = LintContext(
            "g.py",
            textwrap.dedent(
                """
                import threading

                class G:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()
                        self.n = 0

                    def f(self):
                        with self._a:
                            self.n = 1

                    def g(self):
                        with self._b:
                            self.n = 2
                """
            ),
            module="repro.fake",
        )
        table = SymbolTable.build([ctx])
        info = table.classes["repro.fake.G"]
        assert info.guarded_attrs() == {"n": frozenset({"_a", "_b"})}
        # Either lock satisfies the guard, so the file is clean.
        assert analyze_contexts([ctx]).findings == []
