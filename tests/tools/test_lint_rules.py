"""Good/bad fixture pairs for every custom lint rule.

Each rule gets at least one seeded-bad snippet that must produce a
finding and the corrected snippet that must not.  Snippets are linted
in memory via :func:`repro.tools.lint.lint_source`, with the module
name pinned where a rule is package-scoped.
"""

import textwrap

from repro.tools.lint import lint_source
from repro.tools.lint.rules import (
    AssertRuntimeRule,
    BareExceptRule,
    DocstringPublicRule,
    FloatEqualityRule,
    LockDisciplineRule,
    MutableDefaultRule,
    RngDeterminismRule,
    TelemetryCoverageRule,
    default_rules,
)


def findings_for(rule, source, module="repro.fake"):
    return lint_source(textwrap.dedent(source), [rule()], module=module)


def rules_hit(source, module="repro.fake"):
    found = lint_source(textwrap.dedent(source), default_rules(), module=module)
    return {f.rule for f in found}


# ----------------------------------------------------------------------
# RNG-DETERMINISM
# ----------------------------------------------------------------------
class TestRngDeterminism:
    BAD = """
        import numpy as np

        def sample():
            np.random.seed(0)
            return np.random.randn(4)
    """
    GOOD = """
        import numpy as np

        def sample(rng: np.random.Generator):
            return rng.standard_normal(4)
    """

    def test_bad_flags_both_calls(self):
        found = findings_for(RngDeterminismRule, self.BAD)
        assert len(found) == 2
        assert all(f.rule == "RNG-DETERMINISM" for f in found)
        assert "np.random.seed" in found[0].message

    def test_good_is_clean(self):
        assert findings_for(RngDeterminismRule, self.GOOD) == []

    def test_unseeded_default_rng_flagged(self):
        found = findings_for(
            RngDeterminismRule,
            "import numpy as np\nrng = np.random.default_rng()\n",
        )
        assert len(found) == 1
        assert "unseeded" in found[0].message

    def test_seeded_default_rng_allowed(self):
        found = findings_for(
            RngDeterminismRule,
            "import numpy as np\nrng = np.random.default_rng(7)\n",
        )
        assert found == []

    def test_sanctioned_module_may_spawn_unseeded(self):
        found = findings_for(
            RngDeterminismRule,
            "import numpy as np\nrng = np.random.default_rng()\n",
            module="repro.rng",
        )
        assert found == []

    def test_full_numpy_spelling_flagged(self):
        found = findings_for(
            RngDeterminismRule,
            "import numpy\nx = numpy.random.rand(3)\n",
        )
        assert len(found) == 1


# ----------------------------------------------------------------------
# LOCK-DISCIPLINE
# ----------------------------------------------------------------------
class TestLockDiscipline:
    BAD = """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def add(self, item):
                with self._lock:
                    self._items.append(item)

            def clear(self):
                self._items = []          # race: no lock held
    """
    GOOD = """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def add(self, item):
                with self._lock:
                    self._items.append(item)

            def clear(self):
                with self._lock:
                    self._items = []
    """

    def test_bad_flags_unlocked_write(self):
        found = findings_for(LockDisciplineRule, self.BAD)
        assert len(found) == 1
        assert found[0].rule == "LOCK-DISCIPLINE"
        assert "_items" in found[0].message

    def test_good_is_clean(self):
        assert findings_for(LockDisciplineRule, self.GOOD) == []

    def test_init_is_exempt(self):
        # The __init__ writes in both fixtures never count as races.
        found = findings_for(LockDisciplineRule, self.GOOD)
        assert found == []

    def test_locked_suffix_methods_are_exempt(self):
        source = """
            import threading

            class Box:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._queue = []

                def put(self, item):
                    with self._cond:
                        self._queue.append(item)

                def _drain_locked(self):
                    self._queue.pop()     # callers hold the lock
        """
        assert findings_for(LockDisciplineRule, source) == []

    def test_mutator_call_in_assignment_rhs_is_caught(self):
        source = """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._table = {}

                def set(self, key, value):
                    with self._lock:
                        self._table[key] = value

                def slot(self, key):
                    return self._table.setdefault(key, [])   # unlocked mutation
        """
        found = findings_for(LockDisciplineRule, source)
        assert len(found) == 1
        assert "_table" in found[0].message

    def test_class_without_lock_is_ignored(self):
        source = """
            class Plain:
                def set(self, value):
                    self._value = value
        """
        assert findings_for(LockDisciplineRule, source) == []


# ----------------------------------------------------------------------
# TELEMETRY-COVERAGE
# ----------------------------------------------------------------------
class TestTelemetryCoverage:
    SERVE = "repro.serve.fake"

    def test_registry_internals_flagged(self):
        source = """
            class Server:
                def handle(self):
                    self.metrics._counters["x"].value += 1
        """
        found = findings_for(TelemetryCoverageRule, source, module=self.SERVE)
        assert len(found) == 1
        assert "_counters" in found[0].message

    def test_accessor_usage_is_clean(self):
        source = """
            class Server:
                def handle(self):
                    self.metrics.counter("serve/requests_total").inc()
                    with self.metrics.timer("serve/dispatch_seconds"):
                        pass
        """
        assert findings_for(
            TelemetryCoverageRule, source, module=self.SERVE
        ) == []

    def test_raw_wall_clock_flagged(self):
        source = """
            import time

            def measure():
                start = time.perf_counter()
                return start
        """
        found = findings_for(TelemetryCoverageRule, source, module=self.SERVE)
        assert len(found) == 1
        assert "perf_counter" in found[0].message

    def test_injected_clock_is_clean(self):
        source = """
            def measure(metrics):
                start = metrics.clock()
                return start
        """
        assert findings_for(
            TelemetryCoverageRule, source, module=self.SERVE
        ) == []

    def test_monotonic_scheduling_clock_allowed(self):
        source = """
            import time

            def wait_deadline():
                return time.monotonic() + 1.0
        """
        assert findings_for(
            TelemetryCoverageRule, source, module=self.SERVE
        ) == []

    def test_direct_instrument_instantiation_flagged(self):
        source = """
            def build():
                from repro.telemetry.metrics import Counter
                return Counter("orphan")
        """
        found = findings_for(TelemetryCoverageRule, source, module=self.SERVE)
        assert len(found) == 1
        assert "snapshot()" in found[0].message

    def test_entry_point_without_span_flagged(self):
        source = """
            class Server:
                def predict(self, row):
                    return self._dispatch("predict", [row])[0]
        """
        found = findings_for(TelemetryCoverageRule, source, module=self.SERVE)
        assert len(found) == 1
        assert "Server.predict" in found[0].message
        assert "span" in found[0].message

    def test_entry_point_with_span_helper_is_clean(self):
        source = """
            class Server:
                def request(self, method, row):
                    with self._start_span("serve/request", method=method):
                        return self._dispatch(method, [row])[0]
        """
        assert findings_for(
            TelemetryCoverageRule, source, module=self.SERVE
        ) == []


    def test_entry_point_delegating_to_sibling_is_clean(self):
        source = """
            class Server:
                def request(self, method, row):
                    with self._start_span("serve/request", method=method):
                        return self._dispatch(method, [row])[0]

                def predict(self, row):
                    return self.request("predict", row)
        """
        assert findings_for(
            TelemetryCoverageRule, source, module=self.SERVE
        ) == []

    def test_self_recursion_is_not_delegation(self):
        source = """
            class Server:
                def predict(self, row):
                    return self.predict(row)
        """
        found = findings_for(TelemetryCoverageRule, source, module=self.SERVE)
        assert len(found) == 1

    def test_span_coverage_scoped_to_serve(self):
        source = """
            class Trainer:
                def predict(self, row):
                    return row
        """
        assert findings_for(
            TelemetryCoverageRule, source, module="repro.optim.fake"
        ) == []

    def test_rule_is_scoped_to_serve_and_optim(self):
        source = """
            import time

            def stamp():
                return time.time()
        """
        assert findings_for(
            TelemetryCoverageRule, source, module="repro.pipeline.fake"
        ) == []
        assert (
            len(
                findings_for(
                    TelemetryCoverageRule, source, module="repro.optim.fake"
                )
            )
            == 1
        )


class TestTelemetryCoverageOnline:
    ONLINE = "repro.online.fake"

    def test_online_entry_point_without_span_flagged(self):
        source = """
            class Trainer:
                def partial_fit(self, x, y):
                    return self._sgd_step(x, y)
        """
        found = findings_for(TelemetryCoverageRule, source, module=self.ONLINE)
        assert len(found) == 1
        assert "Trainer.partial_fit" in found[0].message
        assert "continuous-learning" in found[0].message

    def test_online_entry_point_with_span_is_clean(self):
        source = """
            from repro.telemetry.trace import start_span

            class Policy:
                def decide(self, report, step):
                    with start_span("online/promotion_decide"):
                        return self._evaluate(report, step)
        """
        assert findings_for(
            TelemetryCoverageRule, source, module=self.ONLINE
        ) == []

    def test_online_delegation_to_spanned_sibling_is_clean(self):
        source = """
            from repro.telemetry.trace import start_span

            class Publisher:
                def maybe_publish(self, model, step):
                    return self.publish(model, step)

                def publish(self, model, step):
                    with start_span("online/publish"):
                        return self.registry.publish(self.name, model)
        """
        assert findings_for(
            TelemetryCoverageRule, source, module=self.ONLINE
        ) == []

    def test_online_package_covered_by_metrics_rules(self):
        source = """
            class Loop:
                def status(self):
                    return self.metrics._counters["online/steps_total"].value
        """
        found = findings_for(TelemetryCoverageRule, source, module=self.ONLINE)
        assert len(found) == 1
        assert "_counters" in found[0].message

    def test_serve_entry_points_not_required_in_online(self):
        source = """
            class Stream:
                def predict(self, x):
                    return x
        """
        assert findings_for(
            TelemetryCoverageRule, source, module=self.ONLINE
        ) == []


# ----------------------------------------------------------------------
# MUTABLE-DEFAULT
# ----------------------------------------------------------------------
class TestMutableDefault:
    BAD = """
        def collect(values=[]):
            values.append(1)
            return values
    """
    GOOD = """
        def collect(values=None):
            if values is None:
                values = []
            values.append(1)
            return values
    """

    def test_bad(self):
        found = findings_for(MutableDefaultRule, self.BAD)
        assert len(found) == 1
        assert "collect" in found[0].message

    def test_good(self):
        assert findings_for(MutableDefaultRule, self.GOOD) == []

    def test_kwonly_and_call_defaults(self):
        found = findings_for(
            MutableDefaultRule, "def f(*, table=dict()):\n    return table\n"
        )
        assert len(found) == 1


# ----------------------------------------------------------------------
# BARE-EXCEPT
# ----------------------------------------------------------------------
class TestBareExcept:
    BAD = """
        def load():
            try:
                return open("x").read()
            except:
                return None
    """
    GOOD = """
        def load():
            try:
                return open("x").read()
            except OSError:
                return None
    """

    def test_bad(self):
        found = findings_for(BareExceptRule, self.BAD)
        assert len(found) == 1
        assert "KeyboardInterrupt" in found[0].message

    def test_good(self):
        assert findings_for(BareExceptRule, self.GOOD) == []


# ----------------------------------------------------------------------
# FLOAT-EQUALITY
# ----------------------------------------------------------------------
class TestFloatEquality:
    BAD = """
        def check(x):
            return x == 0.3
    """
    GOOD = """
        import math

        def check(x):
            return math.isclose(x, 0.3)
    """

    def test_bad(self):
        found = findings_for(FloatEqualityRule, self.BAD)
        assert len(found) == 1

    def test_good(self):
        assert findings_for(FloatEqualityRule, self.GOOD) == []

    def test_integer_equality_allowed(self):
        assert findings_for(
            FloatEqualityRule, "def f(n):\n    return n == 3\n"
        ) == []

    def test_float_inequality_allowed(self):
        assert findings_for(
            FloatEqualityRule, "def f(x):\n    return x <= 0.0\n"
        ) == []


# ----------------------------------------------------------------------
# ASSERT-RUNTIME
# ----------------------------------------------------------------------
class TestAssertRuntime:
    BAD = """
        def scale(x, factor):
            assert factor > 0
            return x * factor
    """
    GOOD = """
        def scale(x, factor):
            if factor <= 0:
                raise ValueError(f"factor must be > 0, got {factor}")
            return x * factor
    """

    def test_bad(self):
        found = findings_for(AssertRuntimeRule, self.BAD)
        assert len(found) == 1
        assert "python -O" in found[0].message

    def test_good(self):
        assert findings_for(AssertRuntimeRule, self.GOOD) == []


# ----------------------------------------------------------------------
# Cross-rule sanity
# ----------------------------------------------------------------------
# ----------------------------------------------------------------------
# DOCSTRING-PUBLIC
# ----------------------------------------------------------------------
class TestDocstringPublic:
    SERVE = "repro.serve.fake"
    TELEMETRY = "repro.telemetry.fake"

    BAD = """
        class Server:
            def handle(self):
                return 1

        def probe():
            return 2
    """
    GOOD = '''
        class Server:
            """Documented."""

            def handle(self):
                """Documented."""
                return 1

        def probe():
            """Documented."""
            return 2
    '''

    def test_bad_flags_class_method_and_function(self):
        found = findings_for(DocstringPublicRule, self.BAD, module=self.SERVE)
        assert len(found) == 3
        messages = " ".join(f.message for f in found)
        assert "class `Server`" in messages
        assert "method `Server.handle`" in messages
        assert "function `probe`" in messages

    def test_good_is_clean(self):
        assert findings_for(
            DocstringPublicRule, self.GOOD, module=self.SERVE
        ) == []

    def test_telemetry_package_is_scoped_too(self):
        found = findings_for(
            DocstringPublicRule, self.BAD, module=self.TELEMETRY
        )
        assert len(found) == 3

    def test_other_packages_exempt(self):
        assert findings_for(
            DocstringPublicRule, self.BAD, module="repro.optim.fake"
        ) == []

    def test_private_dunder_nested_and_setters_exempt(self):
        source = '''
            class Server:
                """Documented."""

                def __init__(self):
                    self._x = 0

                def _helper(self):
                    return 0

                @property
                def depth(self):
                    """Documented getter."""
                    return self._x

                @depth.setter
                def depth(self, value):
                    self._x = value

                def outer(self):
                    """Documented."""
                    def inner():
                        return 3
                    return inner
        '''
        assert findings_for(
            DocstringPublicRule, source, module=self.SERVE
        ) == []


def test_every_rule_has_distinct_name():
    names = [rule.name for rule in default_rules()]
    assert len(names) == len(set(names))
    assert len(names) >= 8


def test_one_snippet_can_trip_many_rules():
    source = """
        import numpy as np

        def train(batches=[]):
            assert batches
            np.random.seed(0)
            try:
                return np.random.rand(3)
            except:
                return None
    """
    hit = rules_hit(source)
    assert {
        "MUTABLE-DEFAULT",
        "ASSERT-RUNTIME",
        "RNG-DETERMINISM",
        "BARE-EXCEPT",
    } <= hit
