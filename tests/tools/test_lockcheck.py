"""Runtime lock-order sanitizer: CheckedLock and install().

The deliberate two-lock inversion fixture here is the acceptance
criterion for the sanitizer: with it on, opposite-order acquisition
fails loudly (raises in the acquiring thread *and* is recorded on the
tracker) even though no actual deadlock occurs.
"""

import threading

import pytest

from repro.tools.analyze import lockcheck
from repro.tools.analyze.lockcheck import (
    CheckedLock,
    LockOrderError,
    LockOrderTracker,
)


@pytest.fixture()
def tracker():
    return LockOrderTracker()


def make_pair(tracker):
    a = CheckedLock(name="a", tracker=tracker)
    b = CheckedLock(name="b", tracker=tracker)
    return a, b


class TestCheckedLock:
    def test_well_ordered_acquisitions_pass(self, tracker):
        a, b = make_pair(tracker)
        for _ in range(3):
            with a:
                with b:
                    pass
        assert tracker.inversions == []
        assert ("a", "b") in tracker.edges()

    def test_single_thread_inversion_raises_and_rolls_back(self, tracker):
        a, b = make_pair(tracker)
        with a:
            with b:
                pass
        with pytest.raises(LockOrderError, match="inversion"):
            with b:
                with a:
                    pass
        assert len(tracker.inversions) == 1
        inversion = tracker.inversions[0]
        assert (inversion.first, inversion.second) == ("b", "a")
        # The failed acquisition was rolled back: both locks reacquire.
        assert not a.locked() and not b.locked()
        with a:
            pass

    def test_two_thread_inversion_is_caught(self, tracker):
        # The deliberate deadlock fixture: thread one exhibits a -> b,
        # the main thread then tries b -> a.  Sequenced so the test
        # never actually deadlocks — the sanitizer flags the *order*,
        # not the unlucky interleaving.
        a, b = make_pair(tracker)
        errors = []

        def first_order():
            try:
                with a:
                    with b:
                        pass
            except LockOrderError as exc:  # pragma: no cover - not expected
                errors.append(exc)

        worker = threading.Thread(target=first_order, name="order-ab")
        worker.start()
        worker.join()
        assert errors == []
        with pytest.raises(LockOrderError):
            with b:
                with a:
                    pass
        assert len(tracker.inversions) == 1
        assert tracker.inversions[0].thread == threading.current_thread().name

    def test_recording_mode_collects_without_raising(self):
        tracker = LockOrderTracker(raise_on_inversion=False)
        a, b = make_pair(tracker)
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert len(tracker.inversions) == 1
        assert "inversion" in tracker.inversions[0].describe()

    def test_reentrant_lock_self_reentry_is_not_an_inversion(self, tracker):
        r = CheckedLock(reentrant=True, name="r", tracker=tracker)
        with r:
            with r:
                pass
        assert tracker.inversions == []
        assert tracker.edges() == {}

    def test_acquire_release_protocol(self, tracker):
        a = CheckedLock(name="a", tracker=tracker)
        assert a.acquire()
        assert a.locked()
        assert not a.acquire(blocking=False)
        a.release()
        assert not a.locked()
        assert tracker.held_names() == []

    def test_condition_wait_keeps_holder_stack_consistent(self, tracker):
        cond = threading.Condition(
            CheckedLock(reentrant=True, name="cond", tracker=tracker)
        )
        ready = []

        def consumer():
            with cond:
                while not ready:
                    cond.wait(timeout=5.0)

        worker = threading.Thread(target=consumer)
        worker.start()
        with cond:
            ready.append(1)
            cond.notify_all()
        worker.join(timeout=5.0)
        assert not worker.is_alive()
        assert tracker.inversions == []
        assert tracker.held_names() == []


class TestInstall:
    def test_project_locks_are_checked_others_raw(self):
        with lockcheck.installed() as tracker:
            # A caller whose module lives under the repro package gets
            # a CheckedLock from the patched factory ...
            scope = {"__name__": "repro.fake.module", "threading": threading}
            exec("made = threading.Lock()", scope)
            assert isinstance(scope["made"], CheckedLock)
            assert scope["made"]._tracker is tracker
            # ... while this test module (not under repro) gets the
            # real primitive.
            assert not isinstance(threading.Lock(), CheckedLock)

    def test_condition_default_lock_is_checked_for_project_code(self):
        with lockcheck.installed():
            scope = {"__name__": "repro.fake.module", "threading": threading}
            exec("cond = threading.Condition()", scope)
            assert isinstance(scope["cond"]._lock, CheckedLock)
            assert scope["cond"]._lock.reentrant

    def test_uninstall_restores_threading(self):
        real_lock = threading.Lock
        real_rlock = threading.RLock
        real_condition = threading.Condition
        with lockcheck.installed():
            assert threading.Lock is not real_lock
        assert threading.Lock is real_lock
        assert threading.RLock is real_rlock
        assert threading.Condition is real_condition

    def test_nested_installs_share_the_outer_tracker(self):
        with lockcheck.installed() as outer:
            inner = lockcheck.install()
            try:
                assert inner is outer
            finally:
                lockcheck.uninstall()
            # Still installed after the nested uninstall.
            scope = {"__name__": "repro.fake.module", "threading": threading}
            exec("made = threading.Lock()", scope)
            assert isinstance(scope["made"], CheckedLock)

    def test_each_installed_block_gets_a_fresh_tracker(self):
        with lockcheck.installed() as first:
            pass
        with lockcheck.installed() as second:
            pass
        assert first is not second

    def test_end_to_end_inversion_under_install(self):
        tracker = LockOrderTracker(raise_on_inversion=False)
        with lockcheck.installed(tracker=tracker):
            scope = {"__name__": "repro.fake.module", "threading": threading}
            exec(
                "\n".join(
                    [
                        "a = threading.Lock()",
                        "b = threading.Lock()",
                        "with a:",
                        "    with b:",
                        "        pass",
                        "with b:",
                        "    with a:",
                        "        pass",
                    ]
                ),
                scope,
            )
        assert len(tracker.inversions) == 1
