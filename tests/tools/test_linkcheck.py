"""Markdown link checker: slugs, anchors, relative paths, CLI."""

import textwrap

from repro.tools.linkcheck import (
    check_file,
    collect_markdown,
    extract_links,
    heading_slugs,
    main,
    slugify,
)


def write(path, content):
    path.write_text(textwrap.dedent(content), encoding="utf-8")
    return str(path)


class TestSlugify:
    def test_github_rules(self):
        assert slugify("Resilience & operations") == "resilience--operations"
        assert slugify("Queue saturation") == "queue-saturation"
        assert slugify("`repro serve` CLI") == "repro-serve-cli"
        assert slugify("4e. GEMINI mapping") == "4e-gemini-mapping"
        assert slugify("snake_case stays") == "snake_case-stays"

    def test_link_markup_reduced_to_text(self):
        assert slugify("See [the runbook](docs/RUNBOOK.md)") == (
            "see-the-runbook"
        )

    def test_duplicate_headings_get_suffixes(self):
        slugs = heading_slugs("# Setup\n\n## Setup\n\n### Setup\n")
        assert slugs == {"setup", "setup-1", "setup-2"}


class TestExtraction:
    def test_inline_reference_and_image_links(self):
        text = textwrap.dedent(
            """
            See [docs](docs/RUNBOOK.md) and ![plot](img/p99.png).

            [design]: DESIGN.md
            """
        )
        targets = [target for _line, target in extract_links(text)]
        assert targets == ["docs/RUNBOOK.md", "img/p99.png", "DESIGN.md"]

    def test_code_regions_are_ignored(self):
        text = textwrap.dedent(
            """
            Real: [a](a.md). Inline code: `[b](b.md)`.

            ```
            [c](c.md)
            ```
            """
        )
        targets = [target for _line, target in extract_links(text)]
        assert targets == ["a.md"]

    def test_line_numbers_point_at_source_lines(self):
        text = "first\n\n[late](x.md)\n"
        assert extract_links(text) == [(3, "x.md")]


class TestCheckFile:
    def test_clean_file_has_no_problems(self, tmp_path):
        write(tmp_path / "other.md", "# Target Section\n")
        page = write(
            tmp_path / "page.md",
            """
            # Page

            [ok](other.md), [anchored](other.md#target-section),
            [self](#page), [external](https://example.com/404).
            """,
        )
        assert check_file(page) == []

    def test_missing_file_and_missing_anchor_reported(self, tmp_path):
        write(tmp_path / "other.md", "# Target Section\n")
        page = write(
            tmp_path / "page.md",
            """
            [gone](missing.md)
            [bad anchor](other.md#nope)
            [bad self](#nowhere)
            """,
        )
        problems = check_file(page)
        reasons = {p.target: p.reason for p in problems}
        assert reasons == {
            "missing.md": "file does not exist",
            "other.md#nope": "no such heading anchor",
            "#nowhere": "no such heading anchor",
        }
        assert all(p.file == page for p in problems)
        assert all(p.line > 0 for p in problems)

    def test_links_resolve_relative_to_containing_file(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        write(tmp_path / "README.md", "# Root\n")
        nested = write(
            docs / "RUNBOOK.md",
            "# Runbook\n\n[up](../README.md#root)\n[peer](ARCH.md)\n",
        )
        write(docs / "ARCH.md", "# Arch\n")
        assert check_file(nested) == []

    def test_directory_links_allowed(self, tmp_path):
        (tmp_path / "docs").mkdir()
        page = write(tmp_path / "page.md", "[docs](docs/)\n")
        assert check_file(page) == []

    def test_anchor_on_non_markdown_target_flagged(self, tmp_path):
        write(tmp_path / "data.json", "{}")
        page = write(tmp_path / "page.md", "[bad](data.json#section)\n")
        problems = check_file(page)
        assert len(problems) == 1
        assert problems[0].reason == "anchor on a non-markdown target"


class TestCli:
    def test_directory_walk_finds_nested_markdown(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        write(docs / "a.md", "[broken](nope.md)\n")
        write(docs / "b.md", "# Fine\n")
        files = list(collect_markdown([str(tmp_path)]))
        assert files == [str(docs / "a.md"), str(docs / "b.md")]

    def test_exit_codes(self, tmp_path, capsys):
        good = write(tmp_path / "good.md", "# Fine\n[self](#fine)\n")
        bad = write(tmp_path / "bad.md", "[broken](nope.md)\n")
        assert main([good]) == 0
        assert main([good, bad]) == 1
        err = capsys.readouterr().err
        assert "nope.md" in err
        assert "file does not exist" in err

    def test_missing_argument_file_is_an_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.md")]) == 1

    def test_repository_docs_are_clean(self):
        # The real invariant CI enforces, kept here so a broken docs
        # link fails the local suite too.
        assert main(["README.md", "DESIGN.md", "docs", "--quiet"]) == 0
