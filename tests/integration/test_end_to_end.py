"""Cross-module integration tests exercising the paper's headline claims
at reduced scale."""

import numpy as np
import pytest

from repro.core import GMRegularizer, L1Regularizer, L2Regularizer
from repro.datasets import TabularSchema, TabularEncoder, generate_dataset
from repro.experiments import (
    DeepRunConfig,
    evaluate_method_on_split,
    SmallRunConfig,
    train_deep,
)
from repro.linear import LogisticRegression, accuracy
from repro.optim import Trainer


@pytest.fixture(scope="module")
def signal_noise_data():
    """A dataset with the paper's predictive/noisy feature structure."""
    schema = TabularSchema(
        n_continuous=80, predictive_fraction=0.1, class_separation=3.0,
        flip_rate=0.02, noise_std=0.1,
    )
    rng = np.random.default_rng(11)
    table, labels, weights = generate_dataset(schema, 800, rng)
    x = TabularEncoder().fit_transform(table)
    return x[:600], labels[:600], x[600:], labels[600:], weights


def _fit(x, y, regularizer, epochs=120, seed=0):
    model = LogisticRegression(
        x.shape[1], regularizer=regularizer, rng=np.random.default_rng(seed)
    )
    Trainer(model, lr=0.5, batch_size=32).fit(
        x, y, epochs=epochs, rng=np.random.default_rng(seed + 1)
    )
    return model


def test_gm_beats_unregularized_on_signal_noise_data(signal_noise_data):
    x_train, y_train, x_test, y_test, _w = signal_noise_data
    plain = _fit(x_train, y_train, None)
    gm = _fit(x_train, y_train, GMRegularizer(x_train.shape[1]))
    acc_plain = accuracy(y_test, plain.predict(x_test))
    acc_gm = accuracy(y_test, gm.predict(x_test))
    assert acc_gm >= acc_plain - 0.005  # never worse
    assert acc_gm > 0.85  # genuinely good


def test_gm_learns_two_component_structure(signal_noise_data):
    x_train, y_train, _x, _y, _w = signal_noise_data
    reg = GMRegularizer(x_train.shape[1])
    _fit(x_train, y_train, reg)
    assert reg.mixture.n_components == 2
    lam = np.sort(reg.lam)
    assert lam[1] / lam[0] > 5.0  # clearly separated precisions


def test_gm_suppresses_noise_dimensions_more(signal_noise_data):
    x_train, y_train, _x, _y, true_w = signal_noise_data
    gm_model = _fit(x_train, y_train, GMRegularizer(x_train.shape[1]))
    plain_model = _fit(x_train, y_train, None)
    # Noise dimensions = the weakest half of the Bayes weights.
    noise_dims = np.abs(true_w) < np.median(np.abs(true_w))
    assert noise_dims.sum() > 10
    gm_noise = np.abs(gm_model.weights[noise_dims]).mean()
    plain_noise = np.abs(plain_model.weights[noise_dims]).mean()
    assert gm_noise < plain_noise


def test_cv_protocol_runs_for_every_method(signal_noise_data):
    x_train, y_train, x_test, y_test, _w = signal_noise_data
    config = SmallRunConfig(cv_folds=2, epochs=30, compact_grids=True)
    for method in ("l1", "l2", "elastic", "huber", "gm"):
        acc, params = evaluate_method_on_split(
            method, x_train[:200], y_train[:200], x_test, y_test,
            config, seed=0,
        )
        assert 0.5 < acc <= 1.0, method
        assert isinstance(params, dict)


def test_fixed_baselines_do_not_adapt(signal_noise_data):
    x_train, y_train, _x, _y, _w = signal_noise_data
    l1 = L1Regularizer(1.0)
    l2 = L2Regularizer(1.0)
    _fit(x_train, y_train, l1, epochs=10)
    _fit(x_train, y_train, l2, epochs=10)
    assert l1.strength == 1.0
    assert l2.strength == 1.0


def test_deep_gm_training_reduces_loss_and_learns_mixtures():
    config = DeepRunConfig(
        model="alex", image_size=8, n_train=100, n_test=60, epochs=4,
        width_scale=0.25, batch_size=20, noise=0.6,
    )
    result = train_deep(config, method="gm")
    losses = result.history.losses()
    assert losses[-1] < losses[0]
    for _pi, lam in result.layer_mixtures.values():
        assert np.all(np.isfinite(lam))


def test_resnet_gm_runs_end_to_end():
    config = DeepRunConfig(
        model="resnet", image_size=8, n_train=60, n_test=40, epochs=2,
        n_blocks_per_stage=1, base_width=4, batch_size=20, augment=True,
    )
    result = train_deep(config, method="gm")
    # One GM per conv/dense weight: conv1 + 3 blocks' convs/projs + ip5.
    assert "conv1/weight" in result.layer_mixtures
    assert "ip5/weight" in result.layer_mixtures
    assert result.test_accuracy >= 0.0
