"""Unit tests for stratified splitting, k-fold and grid search."""

import numpy as np
import pytest

from repro.linear import (
    cross_val_accuracy,
    grid_search,
    stratified_k_fold,
    stratified_train_test_split,
)


def test_split_is_disjoint_and_exhaustive(rng):
    y = rng.integers(0, 2, 100)
    train, test = stratified_train_test_split(y, 0.2, rng)
    assert set(train) & set(test) == set()
    assert len(train) + len(test) == 100


def test_split_preserves_class_proportions(rng):
    y = np.array([0] * 80 + [1] * 20)
    train, test = stratified_train_test_split(y, 0.25, rng)
    assert np.isclose(y[test].mean(), 0.2, atol=0.02)
    assert np.isclose(y[train].mean(), 0.2, atol=0.02)


def test_split_keeps_minority_class_on_both_sides(rng):
    y = np.array([0] * 50 + [1] * 3)
    train, test = stratified_train_test_split(y, 0.2, rng)
    assert (y[train] == 1).sum() >= 1
    assert (y[test] == 1).sum() >= 1


def test_split_different_seeds_differ():
    y = np.arange(100) % 2
    t1, _ = stratified_train_test_split(y, 0.2, np.random.default_rng(0))
    t2, _ = stratified_train_test_split(y, 0.2, np.random.default_rng(1))
    assert not np.array_equal(np.sort(t1), np.sort(t2)) or \
        not np.array_equal(t1, t2)


def test_split_validates_fraction(rng):
    with pytest.raises(ValueError):
        stratified_train_test_split(np.array([0, 1]), 0.0, rng)
    with pytest.raises(ValueError):
        stratified_train_test_split(np.array([0, 1]), 1.0, rng)


def test_k_fold_covers_all_samples_once(rng):
    y = rng.integers(0, 2, 53)
    seen = []
    for train, val in stratified_k_fold(y, 5, rng):
        assert set(train) & set(val) == set()
        seen.extend(val.tolist())
    assert sorted(seen) == list(range(53))


def test_k_fold_balanced_classes(rng):
    y = np.array([0] * 30 + [1] * 30)
    for _train, val in stratified_k_fold(y, 3, rng):
        assert abs(y[val].mean() - 0.5) < 0.11


def test_k_fold_more_folds_than_class_supply_skips_empty(rng):
    # Regression (found by hypothesis): 3+3 samples into 4 folds used to
    # yield an empty float-dtype fold and crash; empty folds are skipped.
    y = np.array([0, 0, 0, 1, 1, 1])
    folds = list(stratified_k_fold(y, 4, rng))
    assert 1 <= len(folds) <= 4
    seen = sorted(i for _tr, val in folds for i in val.tolist())
    assert seen == list(range(6))


def test_k_fold_validates(rng):
    with pytest.raises(ValueError):
        list(stratified_k_fold(np.array([0, 1]), 1, rng))
    with pytest.raises(ValueError):
        list(stratified_k_fold(np.array([0, 1]), 3, rng))


def test_cross_val_accuracy_perfect_oracle(rng):
    x = rng.normal(size=(60, 2))
    y = (x[:, 0] > 0).astype(np.int64)

    def oracle(_xt, _yt, x_val):
        return (x_val[:, 0] > 0).astype(np.int64)

    assert cross_val_accuracy(x, y, oracle, n_folds=3, rng=rng) == 1.0


def test_grid_search_picks_best_candidate(rng):
    x = rng.normal(size=(60, 2))
    y = (x[:, 0] > 0).astype(np.int64)
    grid = [{"flip": True}, {"flip": False}]

    def factory(params):
        def fit_predict(_xt, _yt, x_val):
            preds = (x_val[:, 0] > 0).astype(np.int64)
            return 1 - preds if params["flip"] else preds
        return fit_predict

    result = grid_search(x, y, grid, factory, n_folds=3, rng_seed=0)
    assert result.best_params == {"flip": False}
    assert result.best_score == 1.0
    assert len(result.all_scores) == 2


def test_grid_search_empty_grid_rejected(rng):
    with pytest.raises(ValueError):
        grid_search(np.zeros((4, 1)), np.array([0, 1, 0, 1]), [],
                    lambda p: None, n_folds=2, rng_seed=0)
