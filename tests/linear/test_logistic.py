"""Unit tests for logistic regression."""

import numpy as np
import pytest

from repro.core import L2Regularizer
from repro.linear import LogisticRegression, accuracy, sigmoid
from repro.optim import Trainer


def test_sigmoid_stable_at_extremes():
    z = np.array([-1000.0, 0.0, 1000.0])
    out = sigmoid(z)
    assert np.all(np.isfinite(out))
    assert out[0] == pytest.approx(0.0)
    assert out[1] == pytest.approx(0.5)
    assert out[2] == pytest.approx(1.0)


def test_gradient_matches_numeric(rng):
    model = LogisticRegression(5, rng=rng)
    x = rng.normal(size=(12, 5))
    y = rng.integers(0, 2, size=12)
    loss, (grad_w, grad_b) = model.loss_and_gradients(x, y)

    eps = 1e-6
    for i in range(5):
        model.weights[i] += eps
        lp, _ = model.loss_and_gradients(x, y)
        model.weights[i] -= 2 * eps
        lm, _ = model.loss_and_gradients(x, y)
        model.weights[i] += eps
        assert grad_w[i] == pytest.approx((lp - lm) / (2 * eps), abs=1e-4)
    model.bias[0] += eps
    lp, _ = model.loss_and_gradients(x, y)
    model.bias[0] -= 2 * eps
    lm, _ = model.loss_and_gradients(x, y)
    model.bias[0] += eps
    assert grad_b[0] == pytest.approx((lp - lm) / (2 * eps), abs=1e-4)


def test_learns_linearly_separable_data(rng):
    x = rng.normal(size=(200, 3))
    y = (x @ np.array([2.0, -1.0, 0.5]) > 0).astype(np.int64)
    model = LogisticRegression(3, rng=rng)
    Trainer(model, lr=1.0, batch_size=32).fit(x, y, epochs=50, rng=rng)
    assert accuracy(y, model.predict(x)) > 0.97


def test_predict_proba_in_unit_interval(rng):
    model = LogisticRegression(4, rng=rng)
    probs = model.predict_proba(rng.normal(size=(10, 4)))
    assert np.all((probs >= 0) & (probs <= 1))


def test_predict_threshold_half(rng):
    model = LogisticRegression(2, weight_init_std=0.0, rng=rng)
    model.weights[...] = [1.0, 0.0]
    x = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 0.0]])
    assert model.predict(x).tolist() == [1, 0, 1]  # p=0.5 -> class 1


def test_bias_unregularized():
    model = LogisticRegression(3, regularizer=L2Regularizer(1.0))
    params = model.parameters()
    assert params[0].regularizer is not None
    assert params[1].regularizer is None


def test_input_shape_validated(rng):
    model = LogisticRegression(3, rng=rng)
    with pytest.raises(ValueError):
        model.predict(rng.normal(size=(5, 4)))
    with pytest.raises(ValueError):
        model.predict_proba(rng.normal(size=(5,)))  # 1-D but wrong width
    with pytest.raises(ValueError):
        model.loss_and_gradients(rng.normal(size=3), np.zeros(1))  # train: 2-D


def test_single_1d_row_accepted_uniformly(rng):
    """predict / predict_proba / decision_function all take one 1-D row."""
    model = LogisticRegression(3, rng=rng)
    x = rng.normal(size=(4, 3))
    row = x[0]
    assert model.predict(row).shape == (1,)
    assert model.predict(row)[0] == model.predict(x)[0]
    assert model.predict_proba(row).shape == (1,)
    assert model.predict_proba(row)[0] == pytest.approx(
        model.predict_proba(x)[0], abs=1e-12
    )
    assert model.decision_function(row).shape == (1,)
    assert model.decision_function(row)[0] == pytest.approx(
        model.decision_function(x)[0], abs=1e-12
    )
    assert model.predict([0.0, 1.0, 2.0]).shape == (1,)  # list input too


def test_decision_function_is_logit(rng):
    model = LogisticRegression(3, rng=rng)
    x = rng.normal(size=(7, 3))
    assert np.allclose(
        sigmoid(model.decision_function(x)), model.predict_proba(x)
    )


def test_invalid_construction_rejected():
    with pytest.raises(ValueError):
        LogisticRegression(0)
    with pytest.raises(ValueError):
        LogisticRegression(3, weight_init_std=-1.0)


def test_parameters_share_memory_with_model(rng):
    model = LogisticRegression(3, rng=rng)
    model.parameters()[0].value[...] = 7.0
    assert np.allclose(model.weights, 7.0)
