"""Tests for multi-class softmax regression."""

import numpy as np
import pytest

from repro.core import GMRegularizer, L2Regularizer
from repro.linear import SoftmaxRegression, accuracy
from repro.optim import Trainer


def test_probabilities_form_distribution(rng):
    model = SoftmaxRegression(5, 4, rng=rng)
    probs = model.predict_proba(rng.normal(size=(10, 5)))
    assert probs.shape == (10, 4)
    assert np.allclose(probs.sum(axis=1), 1.0)


def test_gradient_matches_numeric(rng):
    model = SoftmaxRegression(4, 3, rng=rng)
    x = rng.normal(size=(9, 4))
    y = rng.integers(0, 3, size=9)
    _loss, (grad_w, grad_b) = model.loss_and_gradients(x, y)
    eps = 1e-6
    for i in range(4):
        for k in range(3):
            model.weights[i, k] += eps
            lp, _ = model.loss_and_gradients(x, y)
            model.weights[i, k] -= 2 * eps
            lm, _ = model.loss_and_gradients(x, y)
            model.weights[i, k] += eps
            assert grad_w[i, k] == pytest.approx((lp - lm) / (2 * eps),
                                                 abs=1e-4)
    for k in range(3):
        model.bias[k] += eps
        lp, _ = model.loss_and_gradients(x, y)
        model.bias[k] -= 2 * eps
        lm, _ = model.loss_and_gradients(x, y)
        model.bias[k] += eps
        assert grad_b[k] == pytest.approx((lp - lm) / (2 * eps), abs=1e-4)


def test_learns_three_linearly_separable_classes(rng):
    centers = np.array([[3.0, 0.0], [-3.0, 3.0], [0.0, -3.0]])
    y = rng.integers(0, 3, size=300)
    x = centers[y] + rng.normal(0, 0.5, size=(300, 2))
    model = SoftmaxRegression(2, 3, rng=rng)
    Trainer(model, lr=0.5, batch_size=32).fit(x, y, epochs=60, rng=rng)
    assert accuracy(y, model.predict(x)) > 0.97


def test_gm_regularizer_on_weight_matrix(rng):
    reg = GMRegularizer(n_dimensions=5 * 3)
    model = SoftmaxRegression(5, 3, regularizer=reg, rng=rng)
    x = rng.normal(size=(60, 5))
    y = rng.integers(0, 3, size=60)
    Trainer(model, lr=0.3, batch_size=20).fit(x, y, epochs=5, rng=rng)
    assert reg.mstep_count > 0
    assert np.all(np.isfinite(model.weights))


def test_bias_unregularized(rng):
    model = SoftmaxRegression(3, 2, regularizer=L2Regularizer(1.0), rng=rng)
    assert model.parameters()[0].regularizer is not None
    assert model.parameters()[1].regularizer is None


def test_binary_case_consistent_with_logistic_ordering(rng):
    # Softmax with 2 classes should rank samples like a linear score.
    model = SoftmaxRegression(2, 2, rng=rng)
    x = rng.normal(size=(20, 2))
    probs = model.predict_proba(x)[:, 1]
    preds = model.predict(x)
    assert np.array_equal(preds, (probs > 0.5).astype(np.int64))


def test_validation():
    with pytest.raises(ValueError):
        SoftmaxRegression(0, 3)
    with pytest.raises(ValueError):
        SoftmaxRegression(3, 1)
    model = SoftmaxRegression(3, 2)
    with pytest.raises(ValueError):
        model.predict(np.zeros((2, 4)))
    with pytest.raises(ValueError):
        model.loss_and_gradients(np.zeros((2, 3)), np.array([0, 5]))
