"""Unit tests for evaluation metrics."""

import numpy as np
import pytest

from repro.linear import (
    accuracy,
    confusion_counts,
    error_rate,
    mean_and_standard_error,
    precision_recall_f1,
)


def test_accuracy_basic():
    assert accuracy(np.array([1, 0, 1, 1]), np.array([1, 0, 0, 1])) == 0.75


def test_accuracy_perfect_and_zero():
    y = np.array([0, 1])
    assert accuracy(y, y) == 1.0
    assert accuracy(y, 1 - y) == 0.0


def test_error_rate_complements_accuracy(rng):
    y = rng.integers(0, 2, 50)
    p = rng.integers(0, 2, 50)
    assert error_rate(y, p) == pytest.approx(1.0 - accuracy(y, p))


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        accuracy(np.array([1, 0]), np.array([1]))


def test_empty_rejected():
    with pytest.raises(ValueError):
        accuracy(np.array([]), np.array([]))


def test_mean_and_stderr_matches_formula():
    values = [0.8, 0.9, 1.0, 0.7, 0.6]
    mean, se = mean_and_standard_error(values)
    assert mean == pytest.approx(0.8)
    assert se == pytest.approx(np.std(values, ddof=1) / np.sqrt(5))


def test_stderr_of_single_value_is_zero():
    mean, se = mean_and_standard_error([0.5])
    assert (mean, se) == (0.5, 0.0)


def test_mean_and_stderr_empty_rejected():
    with pytest.raises(ValueError):
        mean_and_standard_error([])


def test_confusion_counts():
    y = np.array([1, 1, 0, 0, 1])
    p = np.array([1, 0, 1, 0, 1])
    assert confusion_counts(y, p) == (2, 1, 1, 1)


def test_precision_recall_f1():
    y = np.array([1, 1, 0, 0, 1])
    p = np.array([1, 0, 1, 0, 1])
    precision, recall, f1 = precision_recall_f1(y, p)
    assert precision == pytest.approx(2 / 3)
    assert recall == pytest.approx(2 / 3)
    assert f1 == pytest.approx(2 / 3)


def test_precision_recall_degenerate_no_positives():
    y = np.zeros(4, dtype=int)
    p = np.zeros(4, dtype=int)
    assert precision_recall_f1(y, p) == (0.0, 0.0, 0.0)
