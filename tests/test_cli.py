"""Tests for the ``python -m repro`` experiment CLI."""

import pytest

from repro.cli import build_parser, main


def test_parser_accepts_all_experiments():
    parser = build_parser()
    for name in ("table2", "table4", "table5", "table6", "table7",
                 "table8", "fig3", "fig4", "fig5", "fig6", "fig7", "all"):
        args = parser.parse_args([name])
        assert args.experiment == name


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["table99"])


def test_table2_runs(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "breast-canc" in out
    assert "ionosphere" in out


def test_table7_subset_fast(capsys):
    assert main(["table7", "--fast", "--datasets", "hepatitis"]) == 0
    out = capsys.readouterr().out
    assert "hepatitis" in out
    assert "GM" in out


def test_unknown_dataset_rejected(capsys):
    assert main(["table7", "--datasets", "mnist"]) == 2


def test_fig5_fast_runs(capsys):
    assert main(["fig5", "--fast", "--epochs", "3"]) == 0
    out = capsys.readouterr().out
    assert "Im=50" in out
    assert "baseline" in out
