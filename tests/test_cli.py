"""Tests for the ``python -m repro`` experiment CLI."""

import numpy as np
import pytest

from repro.cli import build_parser, main


def test_parser_accepts_all_experiments():
    parser = build_parser()
    for name in ("table2", "table4", "table5", "table6", "table7",
                 "table8", "fig3", "fig4", "fig5", "fig6", "fig7", "all"):
        args = parser.parse_args([name])
        assert args.experiment == name


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["table99"])


def test_table2_runs(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "breast-canc" in out
    assert "ionosphere" in out


def test_table7_subset_fast(capsys):
    assert main(["table7", "--fast", "--datasets", "hepatitis"]) == 0
    out = capsys.readouterr().out
    assert "hepatitis" in out
    assert "GM" in out


def test_unknown_dataset_rejected(capsys):
    assert main(["table7", "--datasets", "mnist"]) == 2


def test_fig5_fast_runs(capsys):
    assert main(["fig5", "--fast", "--epochs", "3"]) == 0
    out = capsys.readouterr().out
    assert "Im=50" in out
    assert "baseline" in out


def test_parser_accepts_telemetry_flags():
    args = build_parser().parse_args(
        ["fig5", "--telemetry-out", "run.jsonl", "--log-metrics"]
    )
    assert args.telemetry_out == "run.jsonl"
    assert args.log_metrics is True
    args = build_parser().parse_args(["table2"])
    assert args.telemetry_out is None
    assert args.log_metrics is False


def test_parser_accepts_serve_commands():
    parser = build_parser()
    args = parser.parse_args(["serve", "--requests", "40", "--max-batch", "8"])
    assert args.experiment == "serve"
    assert args.requests == 40 and args.max_batch == 8
    args = parser.parse_args(
        ["predict", "--registry", "models", "--input", "rows.npy", "--proba"]
    )
    assert args.experiment == "predict" and args.proba is True


def test_serve_smoke_and_predict_roundtrip(tmp_path, capsys):
    registry = str(tmp_path / "models")
    assert main(["serve", "--fast", "--requests", "40", "--max-batch", "8",
                 "--registry", registry]) == 0
    out = capsys.readouterr().out
    assert "serve smoke test OK" in out
    assert "published synthetic-readmission:v0001" in out

    # The published model is self-describing: predict scores rows from a
    # file against the registry with no retraining.
    import json

    meta = json.loads(
        (tmp_path / "models" / "synthetic-readmission" / "v0001.meta.json")
        .read_text()
    )
    rows = np.random.default_rng(0).normal(size=(3, meta["n_features"]))
    inputs = tmp_path / "rows.npy"
    np.save(inputs, rows)
    assert main(["predict", "--registry", registry,
                 "--input", str(inputs)]) == 0
    out = capsys.readouterr().out
    printed = [line for line in out.splitlines()
               if line.strip() in {"0", "1"}]
    assert len(printed) == 3


def test_predict_requires_registry_and_input():
    with pytest.raises(SystemExit):
        main(["predict"])


def test_telemetry_flags_write_log_and_print_summary(tmp_path, capsys):
    import json

    path = tmp_path / "fig5.jsonl"
    assert main(["fig5", "--fast", "--epochs", "2",
                 "--telemetry-out", str(path), "--log-metrics"]) == 0
    events = [json.loads(line) for line in path.read_text().splitlines()]
    kinds = {e["event"] for e in events}
    assert {"train_start", "em_step", "epoch_end", "train_end"} <= kinds
    # fig5 trains 6 GM settings + 1 baseline = 7 runs in one log.
    assert {e["run"] for e in events} == set(range(7))
    epoch_end = next(e for e in events if e["event"] == "epoch_end")
    assert set(epoch_end["phases"]) == {"estep", "grad", "mstep", "sgd"}
    assert epoch_end["gm_state"]  # per-layer pi/lambda present
    # --log-metrics prints each run's phase summary to stderr.
    err = capsys.readouterr().err
    assert "phase/estep" in err
    assert "train/batches" in err


def test_parser_accepts_observability_flags():
    parser = build_parser()
    args = parser.parse_args(
        ["serve", "--metrics-port", "0", "--trace-out", "spans.jsonl",
         "--trace-sample", "0.5"]
    )
    assert args.metrics_port == 0
    assert args.trace_out == "spans.jsonl"
    assert args.trace_sample == 0.5
    args = parser.parse_args(["metrics", "--from-json", "snap.json"])
    assert args.experiment == "metrics" and args.from_json == "snap.json"
    args = parser.parse_args(
        ["trace", "summarize", "--span-log", "spans.jsonl",
         "--trace-id", "abc123"]
    )
    assert args.experiment == "trace"
    assert args.subaction == "summarize"
    assert args.span_log == "spans.jsonl" and args.trace_id == "abc123"


def test_serve_with_tracing_and_metrics_port(tmp_path, capsys):
    spans = tmp_path / "spans.jsonl"
    assert main(["serve", "--fast", "--requests", "30", "--max-batch", "8",
                 "--trace-out", str(spans), "--metrics-port", "0"]) == 0
    out = capsys.readouterr().out
    assert "serve smoke test OK" in out
    assert "0 problems" in out  # self-scrape validated cleanly
    assert "traces: started=" in out

    # The span log is a parseable narrative of the replay...
    import json
    records = [json.loads(line)
               for line in spans.read_text().splitlines()]
    names = {r["name"] for r in records}
    assert "serve/request" in names

    # ...that `repro trace summarize` turns into a table + tree.
    assert main(["trace", "summarize", "--span-log", str(spans)]) == 0
    out = capsys.readouterr().out
    assert "serve/request" in out
    assert "p99_ms" in out
    assert "critical path" in out


def test_trace_summarize_argument_errors(tmp_path):
    with pytest.raises(SystemExit):
        main(["trace", "frobnicate", "--span-log", "x.jsonl"])
    with pytest.raises(SystemExit):
        main(["trace", "summarize"])  # missing --span-log
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(SystemExit):
        main(["trace", "summarize", "--span-log", str(empty)])


def test_metrics_command_renders_snapshot(tmp_path, capsys):
    import json

    snapshot = {
        "metrics": {
            "counters": {"serve/requests_total": 9.0},
            "gauges": {"serve/queue_depth": 1.0},
        }
    }
    path = tmp_path / "snap.json"
    path.write_text(json.dumps(snapshot))
    assert main(["metrics", "--from-json", str(path)]) == 0
    out = capsys.readouterr().out
    assert "repro_serve_requests_total 9" in out
    assert "# TYPE repro_serve_queue_depth gauge" in out


def test_metrics_command_requires_from_json():
    with pytest.raises(SystemExit):
        main(["metrics"])


def test_metrics_command_rejects_snapshotless_json(tmp_path, capsys):
    import json

    path = tmp_path / "nometrics.json"
    path.write_text(json.dumps({"bench": "trace", "extra": {}}))
    with pytest.raises(SystemExit) as excinfo:
        main(["metrics", "--from-json", str(path)])
    assert excinfo.value.code == 1
    assert "no metrics snapshot found" in capsys.readouterr().err
