"""Tests for repro.telemetry.trace: spans, sampling, exporters."""

import io
import json
import threading

import pytest

from repro.telemetry.trace import (
    DEFAULT_SAMPLE_RATE,
    NULL_SPAN,
    JsonlSpanExporter,
    SpanRingBuffer,
    Tracer,
    add_event,
    current_span,
    current_tracer,
    load_spans,
    spans_by_trace,
    start_span,
    tracing_active,
    use_tracer,
)


class FakeClock:
    def __init__(self, start=0.0, step=1.0):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def make_tracer(**kwargs):
    kwargs.setdefault("clock", FakeClock())
    kwargs.setdefault("wall_clock", lambda: 1234.5)
    return Tracer(**kwargs)


# ----------------------------------------------------------------------
# Identity and determinism
# ----------------------------------------------------------------------
def test_ids_are_deterministic_across_tracers():
    first = [make_tracer().start_span("op").context for _ in range(1)][0]
    second = make_tracer().start_span("op").context
    assert first.trace_id == second.trace_id
    assert first.span_id == second.span_id
    # Seed-derived prefix + serial counter.
    assert first.trace_id.startswith("af7a89")
    assert first.span_id == "00000001"


def test_seed_changes_trace_prefix_only():
    a = make_tracer(seed=2018).start_span("op").context
    b = make_tracer(seed=7).start_span("op").context
    assert a.trace_id != b.trace_id
    assert a.span_id == b.span_id


def test_children_share_trace_and_parent_chain():
    tracer = make_tracer()
    with tracer.start_span("root") as root:
        with tracer.start_span("child") as child:
            with tracer.start_span("grandchild") as grandchild:
                assert child.context.trace_id == root.context.trace_id
                assert grandchild.context.trace_id == root.context.trace_id
                assert child.parent_id == root.context.span_id
                assert grandchild.parent_id == child.context.span_id


def test_active_span_stacks_and_restores():
    tracer = make_tracer()
    assert current_span() is None
    with tracer.start_span("outer") as outer:
        assert current_span() is outer
        with tracer.start_span("inner") as inner:
            assert current_span() is inner
        assert current_span() is outer
    assert current_span() is None


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------
def test_deterministic_rate_accumulator_sampling():
    tracer = make_tracer(sample_rate=0.5)
    decisions = [tracer.start_span("r").sampled for _ in range(6)]
    # Exactly every second root fires, no randomness involved.
    assert decisions == [False, True, False, True, False, True]
    assert tracer.started == 6
    assert tracer.sampled == 3


def test_default_rate_records_one_in_ten():
    tracer = make_tracer(sample_rate=DEFAULT_SAMPLE_RATE)
    decisions = [tracer.start_span("r").sampled for _ in range(20)]
    assert decisions.count(True) == 2


def test_children_inherit_unsampled_decision():
    tracer = make_tracer(sample_rate=0.5)
    with tracer.start_span("root") as root:  # first root: unsampled
        assert not root.sampled
        with tracer.start_span("child") as child:
            assert not child.sampled
    assert len(tracer.buffer) == 0


def test_unsampled_spans_drop_payload():
    tracer = make_tracer(sample_rate=0.0)
    with tracer.start_span("r", attributes={"k": 1}) as span:
        span.set_attribute("x", 2)
        span.event("boom")
        span.record_child("c", 0.5)
    assert span.attributes == {}
    assert span.events == []
    assert span.start == 0.0
    assert len(tracer.buffer) == 0


def test_invalid_sample_rate_rejected():
    with pytest.raises(ValueError):
        Tracer(sample_rate=1.5)


# ----------------------------------------------------------------------
# Span payload and lifecycle
# ----------------------------------------------------------------------
def test_span_records_timing_attributes_events():
    tracer = make_tracer()
    with tracer.start_span("op", attributes={"method": "predict"}) as span:
        span.set_attribute("rows", 3)
        span.event("retry", attempt=1)
    payload = tracer.buffer.spans()[0]
    assert payload["name"] == "op"
    assert payload["status"] == "ok"
    assert payload["attributes"] == {"method": "predict", "rows": 3}
    assert payload["events"][0]["name"] == "retry"
    assert payload["events"][0]["attempt"] == 1
    assert payload["duration"] == payload["end"] - payload["start"] > 0
    assert payload["wall_start"] == 1234.5


def test_exception_marks_error_status():
    tracer = make_tracer()
    with pytest.raises(RuntimeError):
        with tracer.start_span("op"):
            raise RuntimeError("boom")
    payload = tracer.buffer.spans()[0]
    assert payload["status"] == "error"
    assert payload["attributes"]["error"] == "RuntimeError"


def test_record_child_emits_synthetic_span():
    tracer = make_tracer()
    with tracer.start_span("epoch") as epoch:
        epoch.record_child("phase/estep", 0.25)
    spans = tracer.buffer.spans()
    child = next(s for s in spans if s["name"] == "phase/estep")
    assert child["parent_id"] == epoch.context.span_id
    assert child["duration"] == pytest.approx(0.25)


# ----------------------------------------------------------------------
# Ring buffer
# ----------------------------------------------------------------------
def test_ring_buffer_bounds_and_counts():
    buffer = SpanRingBuffer(capacity=3)
    for i in range(5):
        buffer.export({"trace_id": "t", "i": i})
    assert len(buffer) == 3
    assert buffer.exported == 5
    assert [s["i"] for s in buffer.spans()] == [2, 3, 4]
    buffer.clear()
    assert len(buffer) == 0
    assert buffer.exported == 5


def test_ring_buffer_trace_filter():
    buffer = SpanRingBuffer()
    buffer.export({"trace_id": "a", "n": 1})
    buffer.export({"trace_id": "b", "n": 2})
    buffer.export({"trace_id": "a", "n": 3})
    assert [s["n"] for s in buffer.trace("a")] == [1, 3]


# ----------------------------------------------------------------------
# JSONL exporter and loader
# ----------------------------------------------------------------------
def test_exporter_writes_one_complete_line_per_span(tmp_path):
    path = tmp_path / "spans.jsonl"
    tracer = make_tracer(exporter=JsonlSpanExporter(path=str(path)))
    with tracer.start_span("a"):
        pass
    with tracer.start_span("b"):
        pass
    tracer.exporter.close()
    lines = path.read_text().splitlines()
    assert [json.loads(line)["name"] for line in lines] == ["a", "b"]


def test_exporter_flush_policy(tmp_path):
    path = tmp_path / "spans.jsonl"
    exporter = JsonlSpanExporter(path=str(path), flush_every=3)
    exporter.export({"n": 1})
    exporter.export({"n": 2})
    assert path.read_text() == ""  # buffered, below threshold
    exporter.export({"n": 3})
    assert len(path.read_text().splitlines()) == 3  # threshold flush
    exporter.export({"n": 4})
    exporter.flush()  # explicit flush drains the buffer
    assert len(path.read_text().splitlines()) == 4
    exporter.close()
    with pytest.raises(RuntimeError):
        exporter.export({"n": 5})


def test_exporter_stream_mode_single_write_lines():
    stream = io.StringIO()
    with JsonlSpanExporter(stream=stream) as exporter:
        exporter.export({"k": "v"})
    assert stream.getvalue() == '{"k": "v"}\n'


def test_exporter_requires_exactly_one_sink(tmp_path):
    with pytest.raises(ValueError):
        JsonlSpanExporter()
    with pytest.raises(ValueError):
        JsonlSpanExporter(
            path=str(tmp_path / "x.jsonl"), stream=io.StringIO()
        )


def test_load_spans_roundtrip_and_grouping(tmp_path):
    path = tmp_path / "spans.jsonl"
    tracer = make_tracer(exporter=JsonlSpanExporter(path=str(path)))
    with tracer.start_span("root"):
        with tracer.start_span("child"):
            pass
    with tracer.start_span("other"):
        pass
    tracer.exporter.close()
    spans = load_spans(str(path))
    assert len(spans) == 3
    grouped = spans_by_trace(spans)
    assert len(grouped) == 2
    sizes = sorted(len(v) for v in grouped.values())
    assert sizes == [1, 2]


def test_load_spans_names_corrupt_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"ok": 1}\n{"truncat\n')
    with pytest.raises(ValueError, match="bad.jsonl:2"):
        load_spans(str(path))


# ----------------------------------------------------------------------
# Ambient API
# ----------------------------------------------------------------------
def test_start_span_without_tracer_is_null_span():
    assert current_tracer() is None
    assert not tracing_active()
    span = start_span("anything")
    assert span is NULL_SPAN
    with span as inert:
        inert.set_attribute("k", 1)
        inert.event("e")
        inert.record_child("c", 0.1)
    add_event("also-a-noop")


def test_use_tracer_installs_and_restores():
    tracer = make_tracer()
    with use_tracer(tracer) as installed:
        assert installed is tracer
        assert current_tracer() is tracer
        assert tracing_active()
        with start_span("op") as span:
            assert span is not NULL_SPAN
            add_event("seen", detail="yes")
    assert current_tracer() is None
    payload = tracer.buffer.spans()[0]
    assert payload["events"][0]["name"] == "seen"


def test_use_tracer_rejects_non_tracer():
    with pytest.raises(TypeError):
        with use_tracer(object()):
            pass


def test_ambient_tracer_is_context_local_per_thread():
    tracer = make_tracer()
    seen_in_thread = []

    def probe():
        seen_in_thread.append(current_tracer())

    with use_tracer(tracer):
        worker = threading.Thread(target=probe)
        worker.start()
        worker.join()
    # A plain thread does not inherit the ambient tracer.
    assert seen_in_thread == [None]
