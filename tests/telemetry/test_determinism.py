"""Determinism guarantees of the telemetry subsystem.

Two properties the ISSUE's acceptance criteria pin down:

1. *Telemetry is passive*: enabling callbacks/metrics changes no
   training result — losses are bit-identical to a callback-free run
   with the same seed.
2. *Runs are reproducible*: two identically seeded runs produce
   identical histories and identical telemetry event streams modulo
   the wall-clock fields (timestamps and timer readings).
"""

import io
import json

import numpy as np

from repro.core import GMRegularizer, LazyUpdateSchedule
from repro.linear import LogisticRegression
from repro.optim import Trainer
from repro.telemetry import GMStateRecorder, JsonlRunLogger

# The only nondeterministic JSONL fields are wall-clock readings.
TIMING_KEYS = frozenset({
    "timestamp", "elapsed_seconds", "cumulative_seconds", "total_seconds",
    "phases", "metrics",
})


def strip_timing(event: dict) -> dict:
    return {k: v for k, v in event.items() if k not in TIMING_KEYS}


def make_problem():
    rng = np.random.default_rng(42)
    x = rng.normal(size=(100, 12))
    y = (x[:, 0] + 0.3 * x[:, 1] > 0).astype(np.int64)
    return x, y


def run_gm(x, y, callbacks=None, epochs=5):
    schedule = LazyUpdateSchedule(model_interval=3, gm_interval=6,
                                  eager_epochs=1)
    reg = GMRegularizer(n_dimensions=12, schedule=schedule)
    model = LogisticRegression(12, regularizer=reg,
                               rng=np.random.default_rng(7))
    trainer = Trainer(model, lr=0.3, batch_size=20)
    history = trainer.fit(x, y, epochs=epochs,
                          rng=np.random.default_rng(123),
                          callbacks=callbacks)
    return history, model, trainer


def test_telemetry_changes_no_training_result():
    x, y = make_problem()
    bare_history, bare_model, _ = run_gm(x, y, callbacks=None)
    logger = JsonlRunLogger(stream=io.StringIO(), log_batches=True)
    recorder = GMStateRecorder()
    obs_history, obs_model, _ = run_gm(x, y, callbacks=[logger, recorder])
    # Bit-identical, not merely close.
    assert np.array_equal(bare_history.losses(), obs_history.losses())
    assert np.array_equal(bare_model.weights, obs_model.weights)


def test_same_seed_identical_history_and_event_stream():
    x, y = make_problem()
    streams = []
    histories = []
    for _ in range(2):
        buf = io.StringIO()
        logger = JsonlRunLogger(stream=buf, log_batches=True)
        history, _, _ = run_gm(x, y, callbacks=[logger])
        histories.append(history)
        streams.append([json.loads(line) for line in buf.getvalue().splitlines()])
    assert np.array_equal(histories[0].losses(), histories[1].losses())
    assert len(streams[0]) == len(streams[1])
    for e0, e1 in zip(streams[0], streams[1]):
        assert strip_timing(e0) == strip_timing(e1)


def test_gm_trajectory_and_phase_times_recoverable_from_jsonl():
    """The acceptance-criteria scenario: a logistic-regression run with
    GMRegularizer + JsonlRunLogger emits a log from which the per-phase
    E-/M-step time and the pi/lambda trajectory can be recovered."""
    x, y = make_problem()
    buf = io.StringIO()
    logger = JsonlRunLogger(stream=buf)
    history, _, trainer = run_gm(x, y, callbacks=[logger], epochs=4)
    events = [json.loads(line) for line in buf.getvalue().splitlines()]

    epoch_ends = [e for e in events if e["event"] == "epoch_end"]
    assert len(epoch_ends) == len(history.records)

    # pi/lambda trajectory: one snapshot per epoch, pi always a simplex.
    pis = [e["gm_state"]["weights"]["pi"] for e in epoch_ends]
    lams = [e["gm_state"]["weights"]["lam"] for e in epoch_ends]
    assert len(pis) == 4
    for pi, lam in zip(pis, lams):
        assert abs(sum(pi) - 1.0) < 1e-9
        assert all(v > 0 for v in lam)

    # Per-phase times: cumulative and non-decreasing across epochs, with
    # the final epoch's totals matching the trainer's own registry.
    for phase in ("estep", "grad", "mstep", "sgd"):
        series = [e["phases"][phase] for e in epoch_ends]
        assert all(b >= a for a, b in zip(series, series[1:]))
    assert epoch_ends[-1]["phases"] == trainer.metrics.phase_seconds()

    # EM activity stream matches the lazy schedule's refresh counts.
    em_events = [e for e in events if e["event"] == "em_step"]
    n_esteps = sum(e["estep"] for e in em_events)
    n_msteps = sum(e["mstep"] for e in em_events)
    gauges = trainer.metrics.snapshot()["gauges"]
    assert n_esteps == gauges["em/estep_refreshes"]
    assert n_msteps == gauges["em/mstep_refreshes"]


def test_clock_injection_makes_epoch_timing_deterministic():
    """Satellite: EpochRecord timing uses the injected clock, so tests
    assert exact durations instead of sleeping."""
    x, y = make_problem()

    ticks = iter(range(0, 10_000))

    def fake_clock():
        return float(next(ticks))

    reg = GMRegularizer(n_dimensions=12)
    model = LogisticRegression(12, regularizer=reg,
                               rng=np.random.default_rng(7))
    trainer = Trainer(model, lr=0.3, batch_size=20, clock=fake_clock)
    history = trainer.fit(x, y, epochs=2, rng=np.random.default_rng(0))
    # Every clock() call advances exactly 1.0: the recorded durations
    # are exact integers determined by the number of clock reads.
    for record in history.records:
        assert record.elapsed_seconds == int(record.elapsed_seconds)
        assert record.elapsed_seconds > 0
    assert history.records[0].cumulative_seconds \
        < history.records[1].cumulative_seconds
    # The phase timers share the same fake clock.
    phases = trainer.metrics.phase_seconds()
    assert all(v == int(v) and v > 0 for v in phases.values())
