"""Unit tests for the metrics registry (counters/gauges/histograms/timers)."""

import threading

import pytest

from repro.telemetry import MetricsRegistry


class FakeClock:
    """Deterministic clock: advances only when told to."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_counter_accumulates_and_rejects_negative():
    reg = MetricsRegistry()
    c = reg.counter("n")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_last_value_wins():
    g = MetricsRegistry().gauge("lr")
    assert g.value is None
    g.set(0.1)
    g.set(0.01)
    assert g.value == 0.01


def test_histogram_summary_statistics():
    h = MetricsRegistry().histogram("loss")
    for v in (3.0, 1.0, 2.0, 4.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == 10.0
    assert h.mean == 2.5
    assert h.min == 1.0
    assert h.max == 4.0
    assert h.quantile(0.0) == 1.0
    assert h.quantile(1.0) == 4.0
    summary = h.summary()
    assert summary["count"] == 4
    assert summary["p50"] in (2.0, 3.0)


def test_histogram_empty_raises_but_summary_is_safe():
    h = MetricsRegistry().histogram("empty")
    with pytest.raises(ValueError):
        h.mean
    with pytest.raises(ValueError):
        h.quantile(0.5)
    assert h.summary() == {"count": 0}


def test_timer_accumulates_with_fake_clock():
    clock = FakeClock()
    reg = MetricsRegistry(clock=clock)
    t = reg.timer("phase/estep")
    with t:
        clock.advance(1.5)
    with t:
        clock.advance(0.5)
    assert t.count == 2
    assert t.total_seconds == pytest.approx(2.0)
    assert t.last_seconds == pytest.approx(0.5)
    assert t.mean_seconds == pytest.approx(1.0)


def test_timer_misuse_raises():
    t = MetricsRegistry(clock=FakeClock()).timer("t")
    with pytest.raises(RuntimeError):
        t.stop()
    t.start()
    with pytest.raises(RuntimeError):
        t.start()


def test_instruments_are_shared_by_name():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.timer("t") is reg.timer("t")


def test_name_kind_conflict_rejected():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    with pytest.raises(TypeError):
        reg.timer("x")


def test_snapshot_and_reset():
    clock = FakeClock()
    reg = MetricsRegistry(clock=clock)
    reg.counter("batches").inc(7)
    reg.gauge("lr").set(0.1)
    reg.histogram("loss").observe(1.0)
    with reg.timer("phase/grad"):
        clock.advance(2.0)
    snap = reg.snapshot()
    assert snap["counters"]["batches"] == 7
    assert snap["gauges"]["lr"] == 0.1
    assert snap["histograms"]["loss"]["count"] == 1
    assert snap["timers"]["phase/grad"]["total_seconds"] == pytest.approx(2.0)
    reg.reset()
    snap = reg.snapshot()
    assert snap["counters"]["batches"] == 0
    assert snap["gauges"]["lr"] is None
    assert snap["histograms"]["loss"] == {"count": 0}
    assert snap["timers"]["phase/grad"]["count"] == 0


def test_timer_reset_discards_other_threads_open_spans():
    """Regression: reset() used to clear only the calling thread's span.

    A worker mid-``with timer:`` on another thread would then leak its
    pre-reset start stamp into the post-reset totals (or crash on
    stop).  Now reset discards *every* open span: the straddling stop()
    contributes zero and the timer stays usable.
    """
    clock = FakeClock()
    reg = MetricsRegistry(clock=clock)
    timer = reg.timer("phase/estep")

    worker_started = threading.Event()
    resume_worker = threading.Event()
    worker_result = {}

    def worker():
        timer.start()
        worker_started.set()
        resume_worker.wait(timeout=5)
        worker_result["elapsed"] = timer.stop()

    thread = threading.Thread(target=worker)
    thread.start()
    assert worker_started.wait(timeout=5)
    clock.advance(100.0)  # worker's open span straddles the reset
    timer.reset()  # main thread resets while the worker is mid-span
    resume_worker.set()
    thread.join(timeout=5)

    # The straddling span was discarded: zero contribution, no error.
    assert worker_result["elapsed"] == 0.0
    assert timer.count == 0
    assert timer.total_seconds == 0.0

    # The worker's thread id is rehabilitated for future spans...
    with timer:
        clock.advance(2.0)
    assert timer.total_seconds == pytest.approx(2.0)
    # ...and stop() without start() still raises after a reset.
    with pytest.raises(RuntimeError):
        timer.stop()


def test_timer_reset_discards_own_open_span_too():
    clock = FakeClock()
    timer = MetricsRegistry(clock=clock).timer("t")
    timer.start()
    clock.advance(50.0)
    timer.reset()
    assert timer.stop() == 0.0  # silently discarded, not an error
    with timer:
        clock.advance(1.0)
    assert timer.total_seconds == pytest.approx(1.0)


def test_phase_seconds_filters_prefix():
    clock = FakeClock()
    reg = MetricsRegistry(clock=clock)
    with reg.timer("phase/estep"):
        clock.advance(1.0)
    with reg.timer("other/thing"):
        clock.advance(5.0)
    assert reg.phase_seconds() == {"estep": pytest.approx(1.0)}
