"""Unit tests for the metrics registry (counters/gauges/histograms/timers)."""

import pytest

from repro.telemetry import MetricsRegistry


class FakeClock:
    """Deterministic clock: advances only when told to."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_counter_accumulates_and_rejects_negative():
    reg = MetricsRegistry()
    c = reg.counter("n")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_last_value_wins():
    g = MetricsRegistry().gauge("lr")
    assert g.value is None
    g.set(0.1)
    g.set(0.01)
    assert g.value == 0.01


def test_histogram_summary_statistics():
    h = MetricsRegistry().histogram("loss")
    for v in (3.0, 1.0, 2.0, 4.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == 10.0
    assert h.mean == 2.5
    assert h.min == 1.0
    assert h.max == 4.0
    assert h.quantile(0.0) == 1.0
    assert h.quantile(1.0) == 4.0
    summary = h.summary()
    assert summary["count"] == 4
    assert summary["p50"] in (2.0, 3.0)


def test_histogram_empty_raises_but_summary_is_safe():
    h = MetricsRegistry().histogram("empty")
    with pytest.raises(ValueError):
        h.mean
    with pytest.raises(ValueError):
        h.quantile(0.5)
    assert h.summary() == {"count": 0}


def test_timer_accumulates_with_fake_clock():
    clock = FakeClock()
    reg = MetricsRegistry(clock=clock)
    t = reg.timer("phase/estep")
    with t:
        clock.advance(1.5)
    with t:
        clock.advance(0.5)
    assert t.count == 2
    assert t.total_seconds == pytest.approx(2.0)
    assert t.last_seconds == pytest.approx(0.5)
    assert t.mean_seconds == pytest.approx(1.0)


def test_timer_misuse_raises():
    t = MetricsRegistry(clock=FakeClock()).timer("t")
    with pytest.raises(RuntimeError):
        t.stop()
    t.start()
    with pytest.raises(RuntimeError):
        t.start()


def test_instruments_are_shared_by_name():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.timer("t") is reg.timer("t")


def test_name_kind_conflict_rejected():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    with pytest.raises(TypeError):
        reg.timer("x")


def test_snapshot_and_reset():
    clock = FakeClock()
    reg = MetricsRegistry(clock=clock)
    reg.counter("batches").inc(7)
    reg.gauge("lr").set(0.1)
    reg.histogram("loss").observe(1.0)
    with reg.timer("phase/grad"):
        clock.advance(2.0)
    snap = reg.snapshot()
    assert snap["counters"]["batches"] == 7
    assert snap["gauges"]["lr"] == 0.1
    assert snap["histograms"]["loss"]["count"] == 1
    assert snap["timers"]["phase/grad"]["total_seconds"] == pytest.approx(2.0)
    reg.reset()
    snap = reg.snapshot()
    assert snap["counters"]["batches"] == 0
    assert snap["gauges"]["lr"] is None
    assert snap["histograms"]["loss"] == {"count": 0}
    assert snap["timers"]["phase/grad"]["count"] == 0


def test_phase_seconds_filters_prefix():
    clock = FakeClock()
    reg = MetricsRegistry(clock=clock)
    with reg.timer("phase/estep"):
        clock.advance(1.0)
    with reg.timer("other/thing"):
        clock.advance(5.0)
    assert reg.phase_seconds() == {"estep": pytest.approx(1.0)}
