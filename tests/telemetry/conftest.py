"""Telemetry tests run under the runtime lock-order sanitizer.

See ``tests/serve/conftest.py`` for the rationale; the metrics
registry, phase timers and tracer all take locks on hot paths, so this
package exercises the sanitizer against the instrument panel.
"""

import pytest

from repro.tools.analyze import lockcheck


@pytest.fixture(autouse=True)
def lock_order_sanitizer():
    tracker = lockcheck.LockOrderTracker(raise_on_inversion=False)
    with lockcheck.installed(tracker=tracker):
        yield tracker
    assert not tracker.inversions, "\n".join(
        inversion.describe() for inversion in tracker.inversions
    )
