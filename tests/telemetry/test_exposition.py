"""Tests for repro.telemetry.exposition: rendering, validation, server.

The golden file pins the exposition format contract — metric naming,
``_total``/``_seconds`` suffixes, summary quantiles, structured
fault/breaker re-labelling and label-value escaping.  If rendering
changes shape, regenerate deliberately with::

    PYTHONPATH=src python -c "
    from tests.telemetry.test_exposition import GOLDEN_SNAPSHOT, GOLDEN_PATH
    from repro.telemetry.exposition import render_exposition
    GOLDEN_PATH.write_text(render_exposition(GOLDEN_SNAPSHOT))"
"""

import pathlib
import urllib.request

import pytest

from repro.telemetry.exposition import (
    CONTENT_TYPE,
    MetricsServer,
    metric_name,
    render_exposition,
    validate_exposition,
)
from repro.telemetry.metrics import MetricsRegistry

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "exposition_golden.txt"

# A hand-built snapshot exercising every mapping rule at once.
GOLDEN_SNAPSHOT = {
    "counters": {
        "serve/requests_total": 42.0,
        "serve/cache_hits": 7.0,  # gains _total
        "resilience/faults/registry/error_total": 3.0,
        "resilience/faults/model/latency_total": 2.0,
        "resilience/breaker/registry/opened_total": 1.0,
        'resilience/breaker/we"ird\\v1/opened_total': 4.0,  # escaping
    },
    "gauges": {
        "serve/queue_depth": 5.0,
        "serve/latency_p99_ms": None,  # unset: omitted, not zero
        "resilience/breaker/registry/state": 1.0,
    },
    "histograms": {
        "serve/batch_size": {
            "count": 10, "sum": 55.0, "mean": 5.5,
            "min": 1.0, "max": 10.0, "p50": 5.0, "p95": 9.5,
        },
        "serve/unused": {"count": 0, "sum": 0.0},  # no quantile lines
    },
    "timers": {
        "phase/estep": {
            "count": 4, "total_seconds": 1.25, "mean_seconds": 0.3125,
        },
    },
}


def test_golden_exposition_format():
    rendered = render_exposition(GOLDEN_SNAPSHOT)
    assert rendered == GOLDEN_PATH.read_text()
    assert validate_exposition(rendered) == []


def test_metric_name_sanitization():
    assert metric_name("serve/requests_total") == "repro_serve_requests_total"
    assert metric_name("phase/estep") == "repro_phase_estep"
    assert metric_name("weird name-1") == "repro_weird_name_1"
    assert metric_name("9starts/digit") == "repro__9starts_digit"


def test_counters_gain_total_suffix():
    text = render_exposition({"counters": {"serve/hits": 1.0}})
    assert "repro_serve_hits_total 1\n" in text
    assert validate_exposition(text) == []


def test_unset_gauges_are_omitted():
    text = render_exposition({"gauges": {"a/set": 2.0, "a/unset": None}})
    assert "repro_a_set 2" in text
    assert "unset" not in text


def test_fault_counters_are_relabelled():
    text = render_exposition(GOLDEN_SNAPSHOT)
    assert (
        'repro_resilience_faults_total{kind="error",site="registry"} 3'
        in text
    )
    assert (
        'repro_resilience_faults_total{kind="latency",site="model"} 2'
        in text
    )
    # One family declaration, not one per path.
    assert text.count("# TYPE repro_resilience_faults_total") == 1


def test_breaker_label_values_are_escaped():
    text = render_exposition(GOLDEN_SNAPSHOT)
    assert (
        'repro_resilience_breaker_opened_total'
        '{breaker="we\\"ird\\\\v1"} 4' in text
    )


def test_histograms_render_as_summaries():
    text = render_exposition(GOLDEN_SNAPSHOT)
    assert "# TYPE repro_serve_batch_size summary" in text
    assert 'repro_serve_batch_size{quantile="0.5"} 5' in text
    assert 'repro_serve_batch_size{quantile="0.95"} 9.5' in text
    assert "repro_serve_batch_size_sum 55" in text
    assert "repro_serve_batch_size_count 10" in text
    # Empty histogram: no quantile samples, but _sum/_count present.
    assert 'repro_serve_unused{quantile' not in text
    assert "repro_serve_unused_count 0" in text


def test_timers_export_seconds_and_calls_counters():
    text = render_exposition(GOLDEN_SNAPSHOT)
    assert "repro_phase_estep_seconds_total 1.25" in text
    assert "repro_phase_estep_calls_total 4" in text


def test_render_accepts_live_registry():
    registry = MetricsRegistry()
    registry.counter("serve/requests_total").inc(3)
    registry.gauge("serve/depth").set(2.0)
    text = render_exposition(registry)
    assert "repro_serve_requests_total 3" in text
    assert "repro_serve_depth 2" in text
    assert validate_exposition(text) == []


def test_render_rejects_other_types():
    with pytest.raises(TypeError):
        render_exposition([1, 2, 3])


# ----------------------------------------------------------------------
# validate_exposition catches real violations
# ----------------------------------------------------------------------
def test_validate_flags_missing_type():
    problems = validate_exposition("repro_orphan 1\n")
    assert any("no TYPE" in p for p in problems)


def test_validate_flags_counter_without_total():
    text = "# TYPE repro_x counter\nrepro_x 1\n"
    problems = validate_exposition(text)
    assert any("_total" in p for p in problems)


def test_validate_flags_garbage_and_missing_newline():
    problems = validate_exposition("# TYPE repro_x gauge\nrepro_x one")
    assert any("newline" in p for p in problems)
    assert any("non-numeric" in p for p in problems)


def test_validate_flags_duplicate_type():
    text = "# TYPE repro_x gauge\n# TYPE repro_x gauge\n"
    problems = validate_exposition(text)
    assert any("duplicate" in p for p in problems)


def test_validate_accepts_golden():
    assert validate_exposition(GOLDEN_PATH.read_text()) == []


# ----------------------------------------------------------------------
# MetricsServer: real HTTP scrape
# ----------------------------------------------------------------------
def test_metrics_server_serves_exposition():
    registry = MetricsRegistry()
    registry.counter("serve/requests_total").inc(5)
    with MetricsServer(registry) as server:
        with urllib.request.urlopen(server.url, timeout=5) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == CONTENT_TYPE
            body = response.read().decode()
    assert "repro_serve_requests_total 5" in body
    assert validate_exposition(body) == []


def test_metrics_server_scrape_reflects_live_updates():
    registry = MetricsRegistry()
    counter = registry.counter("serve/requests_total")
    with MetricsServer(registry) as server:
        counter.inc(1)
        first = urllib.request.urlopen(server.url, timeout=5).read().decode()
        counter.inc(1)
        second = urllib.request.urlopen(server.url, timeout=5).read().decode()
    assert "repro_serve_requests_total 1" in first
    assert "repro_serve_requests_total 2" in second


def test_metrics_server_extra_endpoints_and_404():
    registry = MetricsRegistry()
    with MetricsServer(
        registry, extra={"/health": lambda: "status: ok"}
    ) as server:
        base = f"http://{server.host}:{server.port}"
        health = urllib.request.urlopen(f"{base}/health", timeout=5)
        assert health.read().decode() == "status: ok"
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(f"{base}/nope", timeout=5)
