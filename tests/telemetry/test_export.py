"""Tests for the BENCH_*.json exporter."""

import json

import numpy as np
import pytest

from repro.optim import EpochRecord, TrainingHistory
from repro.telemetry import (
    MetricsRegistry,
    bench_filename,
    bench_payload,
    write_bench_json,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_registry():
    clock = FakeClock()
    reg = MetricsRegistry(clock=clock)
    reg.counter("train/batches").inc(10)
    reg.gauge("em/estep_refreshes").set(6)
    with reg.timer("phase/estep"):
        clock.now += 1.25
    with reg.timer("phase/grad"):
        clock.now += 3.0
    return reg


def make_history():
    return TrainingHistory(records=[
        EpochRecord(epoch=0, train_loss=1.0, elapsed_seconds=2.0,
                    cumulative_seconds=2.0),
        EpochRecord(epoch=1, train_loss=0.5, elapsed_seconds=2.0,
                    cumulative_seconds=4.0, val_accuracy=0.75),
    ])


def test_bench_payload_from_registry_and_history():
    payload = bench_payload("fig5_im50", metrics=make_registry(),
                            history=make_history(), extra={"im": 50})
    assert payload["bench"] == "fig5_im50"
    assert payload["schema_version"] == 1
    assert payload["metrics"]["counters"]["train/batches"] == 10
    assert payload["phases"] == {"estep": 1.25, "grad": 3.0}
    assert payload["history"]["losses"] == [1.0, 0.5]
    assert payload["history"]["val_accuracy"] == [None, 0.75]
    assert payload["history"]["converged_epoch"] is None
    assert payload["extra"] == {"im": 50}
    json.dumps(payload)  # fully serializable


def test_bench_payload_accepts_snapshot_dict():
    snapshot = make_registry().snapshot()
    payload = bench_payload("x", metrics=snapshot)
    assert payload["phases"]["estep"] == 1.25
    assert payload["metrics"] == snapshot


def test_bench_payload_rejects_bad_metrics():
    with pytest.raises(TypeError):
        bench_payload("x", metrics=[1, 2, 3])


def test_bench_payload_converts_numpy_types():
    payload = bench_payload("x", extra={"acc": np.float64(0.5),
                                        "ns": np.arange(3)})
    assert payload["extra"]["acc"] == 0.5
    assert payload["extra"]["ns"] == [0, 1, 2]
    json.dumps(payload)


def test_bench_filename_sanitizes():
    assert bench_filename("fig5_im50").endswith("BENCH_fig5_im50.json")
    assert bench_filename("Ig=500&Im=50", directory="/tmp") == \
        "/tmp/BENCH_Ig_500_Im_50.json"


def test_write_bench_json_roundtrip(tmp_path):
    payload = bench_payload("roundtrip", metrics=make_registry(),
                            history=make_history())
    path = write_bench_json(str(tmp_path / "BENCH_roundtrip.json"), payload)
    loaded = json.loads(open(path).read())
    assert loaded == payload


def test_write_bench_json_requires_bench_field(tmp_path):
    with pytest.raises(ValueError):
        write_bench_json(str(tmp_path / "x.json"), {"metrics": {}})
