"""Tests for the callback framework and the built-in callbacks."""

import io
import json

import numpy as np
import pytest

from repro.core import GMRegularizer, LazyUpdateSchedule
from repro.linear import LogisticRegression
from repro.nn.checkpoint import load_network_weights
from repro.optim import Parameter, Trainer
from repro.telemetry import (
    Callback,
    CallbackList,
    CheckpointCallback,
    EarlyStopping,
    GMStateRecorder,
    JsonlRunLogger,
    MetricsSummary,
    ProgressReporter,
    default_callbacks,
    use_callbacks,
)


class QuadraticModel:
    """Minimal TrainableModel: loss = 0.5 * ||w - x_mean||^2 per batch."""

    def __init__(self, dim, regularizer=None):
        self.w = np.zeros(dim)
        self._params = [Parameter("w", self.w, regularizer)]

    def parameters(self):
        return self._params

    def loss_and_gradients(self, x, y):
        target = x.mean(axis=0)
        diff = self.w - target
        return 0.5 * float(diff @ diff), [diff.copy()]

    def predict(self, x):
        return np.zeros(x.shape[0], dtype=np.int64)


def make_data(rng, n=64, dim=4):
    x = rng.normal(size=(n, dim)) + 3.0
    y = np.zeros(n, dtype=np.int64)
    return x, y


class Recorder(Callback):
    """Records every hook invocation in order."""

    def __init__(self):
        self.events = []

    def on_train_start(self, ctx):
        self.events.append("train_start")

    def on_epoch_start(self, epoch, ctx):
        self.events.append(f"epoch_start:{epoch}")

    def on_batch_end(self, info, ctx):
        self.events.append(f"batch_end:{info.epoch}:{info.batch_index}")

    def on_em_step(self, info, ctx):
        self.events.append(f"em:{info.iteration}:{info.param_name}")

    def on_epoch_end(self, record, ctx):
        self.events.append(f"epoch_end:{record.epoch}")

    def on_train_end(self, history, ctx):
        self.events.append("train_end")


# ----------------------------------------------------------------------
# CallbackList
# ----------------------------------------------------------------------
def test_callback_list_fans_out_in_order():
    a, b = Recorder(), Recorder()
    cbs = CallbackList([a, b])
    cbs.on_train_start(None)
    assert a.events == b.events == ["train_start"]


def test_callback_list_wants_flags():
    assert not CallbackList([]).wants_em_step
    assert not CallbackList([EarlyStopping()]).wants_em_step
    assert CallbackList([Recorder()]).wants_em_step
    assert CallbackList([Recorder()]).wants_batch_end
    # nesting is seen through
    nested = CallbackList([CallbackList([Recorder()])])
    assert nested.wants_em_step


def test_callback_list_rejects_non_callbacks():
    with pytest.raises(TypeError):
        CallbackList([object()])


def test_trainer_fires_full_event_sequence(rng):
    x, y = make_data(rng, n=32)
    rec = Recorder()
    Trainer(QuadraticModel(4), lr=0.1, batch_size=16).fit(
        x, y, epochs=2, rng=rng, callbacks=[rec]
    )
    assert rec.events[0] == "train_start"
    assert rec.events[-1] == "train_end"
    assert rec.events.count("epoch_start:0") == 1
    assert rec.events.count("epoch_end:1") == 1
    # 32/16 = 2 batches per epoch
    assert rec.events.count("batch_end:0:0") == 1
    assert rec.events.count("batch_end:0:1") == 1
    # epoch_start precedes its batches which precede epoch_end
    assert rec.events.index("epoch_start:0") \
        < rec.events.index("batch_end:0:0") \
        < rec.events.index("epoch_end:0")


def test_em_step_events_follow_lazy_schedule(rng):
    x = rng.normal(size=(80, 10))
    y = (x[:, 0] > 0).astype(np.int64)
    sched = LazyUpdateSchedule(model_interval=5, gm_interval=10, eager_epochs=1)
    reg = GMRegularizer(n_dimensions=10, schedule=sched)
    model = LogisticRegression(10, regularizer=reg, rng=rng)
    rec = Recorder()
    Trainer(model, lr=0.3, batch_size=16).fit(
        x, y, epochs=4, rng=rng, callbacks=[rec]
    )
    em_events = [e for e in rec.events if e.startswith("em:")]
    # Matches the schedule arithmetic from test_trainer: 8 E-steps, of
    # which 6 coincide with M-steps -- em events fire when either runs.
    assert len(em_events) == 8
    assert em_events[0] == "em:0:weights"


# ----------------------------------------------------------------------
# JsonlRunLogger
# ----------------------------------------------------------------------
def test_jsonl_logger_event_stream(rng):
    x, y = make_data(rng, n=32)
    buf = io.StringIO()
    logger = JsonlRunLogger(stream=buf, wall_clock=lambda: 123.0,
                            log_batches=True)
    Trainer(QuadraticModel(4), lr=0.1, batch_size=16).fit(
        x, y, epochs=2, rng=rng, callbacks=[logger]
    )
    events = [json.loads(line) for line in buf.getvalue().splitlines()]
    kinds = [e["event"] for e in events]
    assert kinds[0] == "train_start"
    assert kinds[-1] == "train_end"
    assert kinds.count("epoch_end") == 2
    assert kinds.count("batch_end") == 4
    assert all(e["run"] == 0 for e in events)
    assert all(e["timestamp"] == 123.0 for e in events)
    start = events[0]
    assert start["n_samples"] == 32
    assert start["batch_size"] == 16
    assert start["max_epochs"] == 2
    end = events[-1]
    assert end["epochs_run"] == 2
    assert end["metrics"]["counters"]["train/batches"] == 4
    epoch_end = next(e for e in events if e["event"] == "epoch_end")
    assert set(epoch_end["phases"]) == {"estep", "grad", "mstep", "sgd"}


def test_jsonl_logger_increments_run_index(rng):
    x, y = make_data(rng, n=32)
    buf = io.StringIO()
    logger = JsonlRunLogger(stream=buf, wall_clock=lambda: 0.0)
    for _ in range(2):
        Trainer(QuadraticModel(4), lr=0.1, batch_size=16).fit(
            x, y, epochs=1, rng=rng, callbacks=[logger]
        )
    events = [json.loads(line) for line in buf.getvalue().splitlines()]
    assert {e["run"] for e in events} == {0, 1}


def test_jsonl_logger_path_or_stream_exactly_one(tmp_path):
    with pytest.raises(ValueError):
        JsonlRunLogger()
    with pytest.raises(ValueError):
        JsonlRunLogger(path=str(tmp_path / "x.jsonl"), stream=io.StringIO())


def test_jsonl_logger_writes_file_and_closes(tmp_path, rng):
    x, y = make_data(rng, n=32)
    path = tmp_path / "run.jsonl"
    with JsonlRunLogger(path=str(path)) as logger:
        Trainer(QuadraticModel(4), lr=0.1, batch_size=16).fit(
            x, y, epochs=1, rng=rng, callbacks=[logger]
        )
    events = [json.loads(line) for line in path.read_text().splitlines()]
    assert events[0]["event"] == "train_start"
    with pytest.raises(RuntimeError):
        logger._emit({"event": "late"})


def test_jsonl_logger_rejects_bad_flush_every():
    with pytest.raises(ValueError):
        JsonlRunLogger(stream=io.StringIO(), flush_every=0)


def test_jsonl_logger_flush_every_buffers_until_threshold():
    buf = io.StringIO()
    logger = JsonlRunLogger(stream=buf, wall_clock=lambda: 0.0,
                            flush_every=3)
    logger._emit({"event": "a"})
    logger._emit({"event": "b"})
    assert buf.getvalue() == ""  # below threshold: nothing on the stream
    logger._emit({"event": "c"})
    assert len(buf.getvalue().splitlines()) == 3  # threshold drains all
    logger._emit({"event": "d"})
    logger.flush()  # explicit flush drains the partial buffer
    assert len(buf.getvalue().splitlines()) == 4


def test_jsonl_logger_close_flushes_pending(tmp_path, rng):
    x, y = make_data(rng, n=32)
    path = tmp_path / "run.jsonl"
    logger = JsonlRunLogger(path=str(path), flush_every=1000)
    Trainer(QuadraticModel(4), lr=0.1, batch_size=16).fit(
        x, y, epochs=1, rng=rng, callbacks=[logger]
    )
    logger.close()  # run emitted fewer than flush_every events
    events = [json.loads(line) for line in path.read_text().splitlines()]
    assert events[0]["event"] == "train_start"
    assert events[-1]["event"] == "train_end"


def test_jsonl_logger_writes_are_atomic_single_lines():
    """Crash safety: every stream write is whole ``\\n``-terminated lines."""

    class RecordingStream(io.StringIO):
        def __init__(self):
            super().__init__()
            self.writes = []

        def write(self, text):
            self.writes.append(text)
            return super().write(text)

    stream = RecordingStream()
    logger = JsonlRunLogger(stream=stream, wall_clock=lambda: 0.0)
    logger._emit({"event": "one", "note": "multi\nline\ntext"})
    logger._emit({"event": "two"})
    assert len(stream.writes) == 2
    for chunk in stream.writes:
        assert chunk.endswith("\n")
        # One complete JSON document per write call, embedded newlines
        # escaped by json.dumps — a kill between writes can only ever
        # truncate at a line boundary.
        json.loads(chunk)


# ----------------------------------------------------------------------
# GMStateRecorder
# ----------------------------------------------------------------------
def test_gm_state_recorder_trajectory(rng):
    x = rng.normal(size=(80, 10))
    y = (x[:, 0] > 0).astype(np.int64)
    reg = GMRegularizer(n_dimensions=10)
    model = LogisticRegression(10, regularizer=reg, rng=rng)
    rec = GMStateRecorder()
    Trainer(model, lr=0.3, batch_size=16).fit(
        x, y, epochs=3, rng=rng, callbacks=[rec]
    )
    snaps = rec.trajectory["weights"]
    # init snapshot (epoch -1) plus one per epoch
    assert [s["epoch"] for s in snaps] == [-1, 0, 1, 2]
    for snap in snaps:
        assert len(snap["pi"]) == snap["n_components"]
        assert len(snap["lam"]) == snap["n_components"]
        assert abs(sum(snap["pi"]) - 1.0) < 1e-9
    assert len(rec.pi_series("weights")) == 4
    assert json.dumps(rec.as_dict())  # JSON-serializable


def test_gm_state_recorder_ignores_fixed_regularizers(rng):
    x, y = make_data(rng)
    rec = GMStateRecorder()
    Trainer(QuadraticModel(4), lr=0.1, batch_size=16).fit(
        x, y, epochs=1, rng=rng, callbacks=[rec]
    )
    assert rec.trajectory == {}


# ----------------------------------------------------------------------
# EarlyStopping
# ----------------------------------------------------------------------
def test_early_stopping_on_train_loss(rng):
    x, y = make_data(rng)
    model = QuadraticModel(4)
    model.w[...] = x.mean(axis=0)  # already at the optimum: no improvement
    stopper = EarlyStopping(monitor="train_loss", patience=2)
    history = Trainer(model, lr=1e-12, batch_size=64, shuffle=False).fit(
        x, y, epochs=50, rng=rng, callbacks=[stopper]
    )
    assert stopper.stopped_epoch is not None
    assert len(history.records) == stopper.stopped_epoch + 1
    assert len(history.records) < 50


def test_early_stopping_val_accuracy_requires_validation(rng):
    x, y = make_data(rng)
    stopper = EarlyStopping(monitor="val_accuracy")
    with pytest.raises(ValueError):
        Trainer(QuadraticModel(4), lr=0.1, batch_size=16).fit(
            x, y, epochs=2, rng=rng, callbacks=[stopper]
        )


def test_early_stopping_validates_arguments():
    with pytest.raises(ValueError):
        EarlyStopping(monitor="nonsense")
    with pytest.raises(ValueError):
        EarlyStopping(patience=0)
    with pytest.raises(ValueError):
        EarlyStopping(min_delta=-0.1)


# ----------------------------------------------------------------------
# CheckpointCallback
# ----------------------------------------------------------------------
def test_checkpoint_callback_saves_loadable_weights(tmp_path, rng):
    x, y = make_data(rng)
    model = QuadraticModel(4)
    ckpt = CheckpointCallback(str(tmp_path / "ckpt_{epoch:02d}.npz"), every=2)
    Trainer(model, lr=0.3, batch_size=16).fit(
        x, y, epochs=5, rng=rng, callbacks=[ckpt]
    )
    # every=2 saves after epochs 1 and 3, plus the final epoch 4
    assert [p.split("_")[-1] for p in ckpt.saved_paths] == \
        ["01.npz", "03.npz", "04.npz"]
    # the final checkpoint round-trips into a fresh model
    fresh = QuadraticModel(4)
    load_network_weights(fresh, ckpt.saved_paths[-1])
    assert np.array_equal(fresh.w, model.w)


def test_checkpoint_callback_save_best_only(tmp_path, rng):
    x, y = make_data(rng)
    path = tmp_path / "best.npz"
    ckpt = CheckpointCallback(str(path), save_best_only=True,
                              monitor="train_loss")
    Trainer(QuadraticModel(4), lr=0.3, batch_size=16).fit(
        x, y, epochs=5, rng=rng, callbacks=[ckpt]
    )
    assert path.exists()
    assert ckpt.best is not None
    # loss decreases monotonically here, so every epoch improved
    assert len(ckpt.saved_paths) >= 1


def test_checkpoint_callback_validates_arguments():
    with pytest.raises(ValueError):
        CheckpointCallback("x.npz", every=0)
    with pytest.raises(ValueError):
        CheckpointCallback("x.npz", monitor="nope")


# ----------------------------------------------------------------------
# ProgressReporter / MetricsSummary
# ----------------------------------------------------------------------
def test_progress_reporter_output(rng):
    x, y = make_data(rng)
    buf = io.StringIO()
    Trainer(QuadraticModel(4), lr=0.1, batch_size=16).fit(
        x, y, epochs=3, rng=rng,
        callbacks=[ProgressReporter(stream=buf, every=2)],
    )
    out = buf.getvalue()
    assert "epoch 2/3" in out
    assert "epoch 1/3" not in out  # every=2 skips odd epochs
    assert "training done: 3 epochs" in out


def test_metrics_summary_output(rng):
    x, y = make_data(rng)
    buf = io.StringIO()
    Trainer(QuadraticModel(4), lr=0.1, batch_size=16).fit(
        x, y, epochs=1, rng=rng, callbacks=[MetricsSummary(stream=buf)],
    )
    out = buf.getvalue()
    assert "phase/estep" in out
    assert "counter train/batches = 4" in out


# ----------------------------------------------------------------------
# Ambient callbacks (runtime)
# ----------------------------------------------------------------------
def test_use_callbacks_installs_and_restores(rng):
    x, y = make_data(rng, n=32)
    rec = Recorder()
    assert default_callbacks() == ()
    with use_callbacks(rec):
        assert default_callbacks() == (rec,)
        Trainer(QuadraticModel(4), lr=0.1, batch_size=16).fit(
            x, y, epochs=1, rng=rng
        )
    assert default_callbacks() == ()
    assert rec.events[0] == "train_start"
    assert rec.events[-1] == "train_end"


def test_use_callbacks_nests():
    a, b = Recorder(), Recorder()
    with use_callbacks(a):
        with use_callbacks(b):
            assert default_callbacks() == (a, b)
        assert default_callbacks() == (a,)


def test_use_callbacks_rejects_non_callbacks():
    with pytest.raises(TypeError):
        with use_callbacks(object()):
            pass
