"""ShadowEvaluator mirroring and the PromotionPolicy decision rules."""

import numpy as np
import pytest

from repro.linear.logistic import LogisticRegression
from repro.online import PromotionPolicy, ShadowEvaluator
from repro.online.promotion import HOLD, PROMOTE, REJECT
from repro.online.shadow import ShadowReport
from repro.serve import ModelRegistry
from repro.telemetry.trace import Tracer, use_tracer


def make_registry(name="shadowed", d=4):
    registry = ModelRegistry()
    registry.register(name, lambda: LogisticRegression(d, weight_init_std=0.0))
    return registry


def constant_model(d=4, sign=1.0):
    """A model predicting by the sign of the first feature (scaled)."""
    model = LogisticRegression(d, weight_init_std=0.0)
    model.weights[0] = sign * 10.0
    return model


def report(**overrides):
    base = dict(
        candidate_version="v0002",
        live_version="v0001",
        samples=100,
        agreement=1.0,
        live_accuracy=None,
        candidate_accuracy=None,
        live_latency_mean=0.0,
        candidate_latency_mean=0.0,
    )
    base.update(overrides)
    return ShadowReport(**base)


class TestShadowEvaluator:
    def test_fraction_validation(self):
        registry = make_registry()
        with pytest.raises(ValueError, match="fraction"):
            ShadowEvaluator(registry, "shadowed", fraction=0.0)
        with pytest.raises(ValueError, match="fraction"):
            ShadowEvaluator(registry, "shadowed", fraction=1.5)

    def test_no_candidate_means_no_mirroring(self):
        registry = make_registry()
        shadow = ShadowEvaluator(registry, "shadowed", fraction=1.0)
        assert shadow.observe(np.zeros(4), 0) is None
        assert shadow.report() is None

    def test_full_fraction_mirrors_every_request(self):
        registry = make_registry()
        live = constant_model(sign=1.0)
        registry.publish("shadowed", live, activate=True)
        candidate = registry.publish("shadowed", constant_model(sign=1.0))
        shadow = ShadowEvaluator(registry, "shadowed", fraction=1.0)
        shadow.set_candidate(candidate)

        rng = np.random.default_rng(0)
        for _ in range(20):
            row = rng.normal(size=4)
            live_prediction = live.predict(row.reshape(1, -1))[0]
            label = int(row[0] > 0)
            shadow.observe(row, live_prediction, label=label)
        window = shadow.report()
        assert window.samples == 20
        assert window.agreement == 1.0
        assert window.live_accuracy == 1.0
        assert window.candidate_accuracy == 1.0
        assert window.candidate_version == candidate

    def test_disagreeing_candidate_scores_below_live(self):
        registry = make_registry()
        live = constant_model(sign=1.0)
        registry.publish("shadowed", live, activate=True)
        inverted = registry.publish("shadowed", constant_model(sign=-1.0))
        shadow = ShadowEvaluator(registry, "shadowed", fraction=1.0)
        shadow.set_candidate(inverted)

        rng = np.random.default_rng(1)
        for _ in range(30):
            row = rng.normal(size=4)
            live_prediction = live.predict(row.reshape(1, -1))[0]
            shadow.observe(row, live_prediction, label=int(row[0] > 0))
        window = shadow.report()
        assert window.agreement < 0.2
        assert window.candidate_accuracy < window.live_accuracy

    def test_sampling_is_deterministic_per_seed(self):
        def mirrored_count(seed):
            registry = make_registry()
            registry.publish("shadowed", constant_model(), activate=True)
            candidate = registry.publish("shadowed", constant_model())
            shadow = ShadowEvaluator(
                registry, "shadowed", fraction=0.5, seed=seed
            )
            shadow.set_candidate(candidate)
            for i in range(50):
                shadow.observe(np.full(4, float(i)), 1)
            window = shadow.report()
            return 0 if window is None else window.samples

        assert mirrored_count(123) == mirrored_count(123)
        counts = {mirrored_count(seed) for seed in (1, 2, 3, 4, 5)}
        # Not all seeds land on the same subset size.
        assert 0 < min(counts) and max(counts) < 50

    def test_new_candidate_resets_window(self):
        registry = make_registry()
        registry.publish("shadowed", constant_model(), activate=True)
        first = registry.publish("shadowed", constant_model())
        second = registry.publish("shadowed", constant_model())
        shadow = ShadowEvaluator(registry, "shadowed", fraction=1.0)
        shadow.set_candidate(first)
        shadow.observe(np.ones(4), 1)
        assert shadow.report().samples == 1
        shadow.set_candidate(second)
        assert shadow.report() is None
        shadow.clear_candidate()
        assert shadow.candidate_version is None


class TestPromotionPolicy:
    def test_no_report_no_decision(self):
        assert PromotionPolicy().decide(None, step=5) is None

    def test_insufficient_samples_holds(self):
        decision = PromotionPolicy(min_samples=30).decide(
            report(samples=10), step=1
        )
        assert decision.action == HOLD
        assert decision.reason.startswith("insufficient_samples")
        assert decision.evidence["samples"] == 10

    def test_labeled_gain_promotes(self):
        decision = PromotionPolicy(min_samples=10).decide(
            report(live_accuracy=0.6, candidate_accuracy=0.9), step=2
        )
        assert decision.action == PROMOTE
        assert decision.reason.startswith("accuracy_gain")

    def test_labeled_drop_rejects(self):
        decision = PromotionPolicy(min_samples=10, max_accuracy_drop=0.02).decide(
            report(live_accuracy=0.9, candidate_accuracy=0.6), step=2
        )
        assert decision.action == REJECT
        assert decision.reason.startswith("accuracy_drop")

    def test_labeled_inconclusive_holds(self):
        decision = PromotionPolicy(
            min_samples=10, min_accuracy_gain=0.05, max_accuracy_drop=0.1
        ).decide(report(live_accuracy=0.90, candidate_accuracy=0.91), step=2)
        assert decision.action == HOLD

    def test_unlabeled_agreement_promotes(self):
        policy = PromotionPolicy(min_samples=10, min_agreement=0.9)
        assert policy.decide(report(agreement=0.95), step=0).action == PROMOTE
        assert policy.decide(report(agreement=0.5), step=0).action == HOLD

    def test_check_rollback(self):
        policy = PromotionPolicy(max_accuracy_drop=0.02)
        assert policy.check_rollback(0.80, 0.95) is True
        assert policy.check_rollback(0.94, 0.95) is False
        assert policy.check_rollback(None, 0.95) is False
        assert policy.check_rollback(0.80, None) is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_samples": 0},
            {"min_agreement": 1.5},
            {"max_accuracy_drop": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PromotionPolicy(**kwargs)

    def test_decision_emitted_as_span_event(self):
        """The verdict is reconstructable from the trace buffer."""
        tracer = Tracer()
        policy = PromotionPolicy(min_samples=10)
        with use_tracer(tracer):
            decision = policy.decide(
                report(live_accuracy=0.6, candidate_accuracy=0.9), step=4
            )
        events = [
            event
            for span in tracer.buffer.spans()
            for event in span["events"]
            if event["name"] == "promotion_decision"
        ]
        assert len(events) == 1
        event = events[0]
        assert event["action"] == decision.action == PROMOTE
        assert event["candidate"] == decision.candidate_version
        assert event["reason"] == decision.reason
        assert event["step"] == 4
