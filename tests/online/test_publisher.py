"""RegistryPublisher: cadence triggers and candidate (non-active) publishes."""

import numpy as np
import pytest

from repro.linear.logistic import LogisticRegression
from repro.online import PublishTriggers, RegistryPublisher
from repro.serve import ModelRegistry
from repro.telemetry.metrics import MetricsRegistry


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_registry(name="stream-model", d=6):
    registry = ModelRegistry()
    registry.register(name, lambda: LogisticRegression(d, weight_init_std=0.0))
    return registry


def make_model(d=6, seed=0):
    return LogisticRegression(d, rng=np.random.default_rng(seed))


class TestPublishTriggers:
    def test_at_least_one_trigger_required(self):
        with pytest.raises(ValueError, match="at least one"):
            PublishTriggers()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"every_steps": 0},
            {"every_seconds": 0.0},
            {"loss_delta": 0.0},
            {"loss_delta": -0.5},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PublishTriggers(**kwargs)


class TestStepsTrigger:
    def test_publishes_every_n_steps(self):
        registry = make_registry()
        publisher = RegistryPublisher(
            registry, "stream-model", PublishTriggers(every_steps=3)
        )
        model = make_model()
        assert publisher.maybe_publish(model, 1) is None
        assert publisher.maybe_publish(model, 2) is None
        version = publisher.maybe_publish(model, 3)
        assert version is not None
        # Cadence resets from the publish step.
        assert publisher.maybe_publish(model, 4) is None
        assert publisher.maybe_publish(model, 6) is not None
        assert publisher.published_count == 2

    def test_candidates_are_never_activated(self):
        registry = make_registry()
        live = registry.publish("stream-model", make_model(seed=1), activate=True)
        publisher = RegistryPublisher(
            registry, "stream-model", PublishTriggers(every_steps=1)
        )
        candidate = publisher.maybe_publish(make_model(seed=2), 1)
        assert candidate is not None
        assert candidate != live
        assert registry.active_version("stream-model") == live


class TestSecondsTrigger:
    def test_publishes_after_interval_on_injected_clock(self):
        clock = FakeClock()
        metrics = MetricsRegistry(clock=clock)
        registry = make_registry()
        publisher = RegistryPublisher(
            registry,
            "stream-model",
            PublishTriggers(every_seconds=10.0),
            metrics=metrics,
        )
        model = make_model()
        # First call seeds the baseline timestamp; no publish.
        assert publisher.maybe_publish(model, 1) is None
        clock.advance(5.0)
        assert publisher.maybe_publish(model, 2) is None
        clock.advance(6.0)
        assert publisher.maybe_publish(model, 3) is not None
        # Baseline resets at publish time.
        clock.advance(5.0)
        assert publisher.maybe_publish(model, 4) is None


class TestLossDeltaTrigger:
    def test_first_loss_is_baseline_then_delta_fires(self):
        registry = make_registry()
        publisher = RegistryPublisher(
            registry, "stream-model", PublishTriggers(loss_delta=0.1)
        )
        model = make_model()
        assert publisher.maybe_publish(model, 1, loss=0.7) is None
        assert publisher.maybe_publish(model, 2, loss=0.65) is None
        assert publisher.maybe_publish(model, 3, loss=0.55) is not None
        # Improvement *and* regression both trip the trigger.
        assert publisher.maybe_publish(model, 4, loss=0.70) is not None

    def test_no_loss_never_fires(self):
        registry = make_registry()
        publisher = RegistryPublisher(
            registry, "stream-model", PublishTriggers(loss_delta=0.1)
        )
        for step in range(1, 5):
            assert publisher.maybe_publish(make_model(), step) is None


class TestPublish:
    def test_metadata_records_cadence_evidence(self):
        registry = make_registry()
        publisher = RegistryPublisher(
            registry, "stream-model", PublishTriggers(every_steps=1)
        )
        version = publisher.publish(
            make_model(), 7, reason="steps", loss=0.42
        )
        meta = registry.metadata("stream-model", version)
        assert meta["online_step"] == 7
        assert meta["publish_reason"] == "steps"
        assert meta["loss"] == pytest.approx(0.42)

    def test_publish_counter_increments(self):
        metrics = MetricsRegistry()
        registry = make_registry()
        publisher = RegistryPublisher(
            registry,
            "stream-model",
            PublishTriggers(every_steps=1),
            metrics=metrics,
        )
        publisher.publish(make_model(), 1)
        publisher.publish(make_model(), 2)
        assert metrics.counter("online/published_total").value == 2
        assert publisher.published_count == 2
