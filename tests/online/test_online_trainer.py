"""OnlineTrainer: streaming partial_fit and the shared TrainerState path."""

import numpy as np
import pytest

from repro.linear.logistic import LogisticRegression
from repro.online import DecayedGMRegularizer, DriftStream, OnlineTrainer
from repro.optim.trainer import Trainer
from repro.telemetry.metrics import MetricsRegistry


def make_model(n_features=10, seed=0, **reg_kwargs):
    return LogisticRegression(
        n_features,
        regularizer=DecayedGMRegularizer(n_features, **reg_kwargs),
        rng=np.random.default_rng(seed),
    )


class TestPartialFit:
    def test_learns_a_stationary_stream(self):
        stream = DriftStream(n_features=10, batch_size=32, seed=11)
        model = make_model(rho=0.9, warmup_steps=5)
        trainer = OnlineTrainer(model, lr=0.5, n_reference=1024)
        for x, y in stream.batches(60):
            trainer.partial_fit(x, y)
        x_eval, y_eval = stream.holdout(500)
        accuracy = float(np.mean(model.predict(x_eval) == y_eval))
        assert accuracy > 0.9

    def test_step_result_bookkeeping(self):
        stream = DriftStream(n_features=10, batch_size=16, seed=3)
        trainer = OnlineTrainer(make_model(), lr=0.2)
        x, y = stream.next_batch()
        first = trainer.partial_fit(x, y)
        assert first.step == 0
        assert first.samples_seen == 16
        assert first.loss_ewma == pytest.approx(first.loss)
        second = trainer.partial_fit(*stream.next_batch())
        assert second.step == 1
        assert second.samples_seen == 32
        assert trainer.step_count == 2
        assert trainer.samples_seen == 32
        assert np.isfinite(second.loss_ewma)

    def test_loss_ewma_smooths(self):
        stream = DriftStream(n_features=10, batch_size=16, seed=3)
        trainer = OnlineTrainer(make_model(), lr=0.2)
        first = trainer.partial_fit(*stream.next_batch())
        second = trainer.partial_fit(*stream.next_batch())
        expected = 0.9 * first.loss_ewma + 0.1 * second.loss
        assert second.loss_ewma == pytest.approx(expected)

    def test_sample_count_mismatch_rejected(self):
        trainer = OnlineTrainer(make_model())
        with pytest.raises(ValueError, match="sample count"):
            trainer.partial_fit(np.zeros((4, 10)), np.zeros(3))

    def test_single_row_is_reshaped(self):
        trainer = OnlineTrainer(make_model())
        result = trainer.partial_fit(np.zeros(10), np.zeros(1))
        assert result.samples_seen == 1

    def test_metrics_populated(self):
        metrics = MetricsRegistry()
        trainer = OnlineTrainer(make_model(), metrics=metrics)
        stream = DriftStream(n_features=10, batch_size=8, seed=5)
        for x, y in stream.batches(3):
            trainer.partial_fit(x, y)
        assert metrics.counter("online/steps_total").value == 3
        assert metrics.counter("online/samples_total").value == 24
        assert metrics.gauge("online/loss_ewma").value is not None
        assert metrics.timer("phase/estep").count == 3
        assert metrics.timer("phase/sgd").count == 3

    def test_n_reference_validation(self):
        with pytest.raises(ValueError, match="n_reference"):
            OnlineTrainer(make_model(), n_reference=0)


class TestTrainerStateHandoff:
    """Batch Trainer and OnlineTrainer share one typed snapshot."""

    def test_batch_to_online_handoff(self):
        stream = DriftStream(n_features=10, batch_size=32, seed=21)
        x0, y0 = stream.holdout(512, batch_index=0)

        batch_model = make_model(seed=4, rho=0.9, warmup_steps=2)
        batch_trainer = Trainer(batch_model, lr=0.5, batch_size=64)
        batch_trainer.fit(x0, y0, epochs=3, rng=np.random.default_rng(1))
        snapshot = batch_trainer.state()

        online_model = make_model(seed=99, rho=0.9, warmup_steps=2)
        online = OnlineTrainer(online_model, lr=0.3)
        online.load_state(snapshot)

        assert online.step_count == snapshot.iteration
        restored = online_model.regularizer
        np.testing.assert_allclose(
            restored.mixture.pi, batch_model.regularizer.mixture.pi
        )
        np.testing.assert_allclose(
            restored.mixture.lam, batch_model.regularizer.mixture.lam
        )

    def test_online_state_roundtrip(self):
        stream = DriftStream(n_features=10, batch_size=32, seed=21)
        model = make_model(seed=4, rho=0.8)
        trainer = OnlineTrainer(model, lr=0.3)
        for x, y in stream.batches(10):
            trainer.partial_fit(x, y)
        snapshot = trainer.state()
        assert snapshot.iteration == 10
        reg_state = snapshot.em["weights"]
        assert reg_state.resp_sum is not None

        resumed_model = make_model(seed=123, rho=0.8)
        resumed = OnlineTrainer(resumed_model, lr=0.3)
        resumed.load_state(snapshot)
        np.testing.assert_allclose(
            resumed_model.regularizer._resp_sum,
            model.regularizer._resp_sum,
        )
        assert resumed.step_count == 10
