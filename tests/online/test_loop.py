"""ContinuousLoop: drift recovery, rollback and telemetry reconstruction."""

import numpy as np
import pytest

from repro.linear.logistic import LogisticRegression
from repro.online import (
    ContinuousLoop,
    DecayedGMRegularizer,
    DriftStream,
    OnlineTrainer,
    PromotionPolicy,
    PublishTriggers,
    RegistryPublisher,
    ShadowEvaluator,
)
from repro.online.promotion import PROMOTE
from repro.serve import ModelRegistry
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import Tracer

N_FEATURES = 8
NAME = "loop-model"


def build_loop(
    stream_seed=17,
    drift_at=20,
    tracer=None,
    server=None,
    fraction=0.5,
    publish_every=5,
):
    stream = DriftStream(
        n_features=N_FEATURES, batch_size=32, drift_at=drift_at, seed=stream_seed
    )
    model = LogisticRegression(
        N_FEATURES,
        regularizer=DecayedGMRegularizer(
            N_FEATURES, rho=0.9, warmup_steps=5
        ),
        rng=np.random.default_rng(2),
    )
    registry = ModelRegistry()
    registry.register(
        NAME, lambda: LogisticRegression(N_FEATURES, weight_init_std=0.0)
    )
    registry.publish(NAME, model, activate=True)

    metrics = MetricsRegistry()
    trainer = OnlineTrainer(model, lr=0.4, n_reference=1024, metrics=metrics)
    publisher = RegistryPublisher(
        registry, NAME, PublishTriggers(every_steps=publish_every),
        metrics=metrics,
    )
    shadow = ShadowEvaluator(registry, NAME, fraction=fraction, metrics=metrics)
    policy = PromotionPolicy(min_samples=20, metrics=metrics)
    loop = ContinuousLoop(
        trainer, publisher, shadow, policy,
        server=server, metrics=metrics, tracer=tracer,
    )
    return loop, stream, registry, metrics


class TestDriftRecovery:
    def test_loop_publishes_promotes_and_drops_nothing(self):
        loop, stream, registry, _ = build_loop()
        status = loop.run(stream, steps=60)
        assert status["published_total"] >= 1
        assert status["promotions"] >= 1
        assert status["dropped_requests"] == 0
        assert status["requests_total"] == 60 * 32
        assert status["answers_total"] == status["requests_total"]
        # The promoted model has recovered on the post-drift regime.
        x_eval, y_eval = stream.holdout(500)
        live = registry.active(NAME).model
        accuracy = float(np.mean(live.predict(x_eval) == y_eval))
        assert accuracy > 0.85
        assert status["live_accuracy"] > 0.8

    def test_step_summary_shape(self):
        loop, stream, _, _ = build_loop()
        summary = loop.step(*stream.next_batch())
        assert summary["step"] == 0
        assert 0.0 <= summary["batch_accuracy"] <= 1.0
        assert summary["active_version"] == "v0001"
        assert loop.live_accuracy == summary["live_accuracy"]

    def test_run_validates_steps(self):
        loop, stream, _, _ = build_loop()
        with pytest.raises(ValueError, match="steps"):
            loop.run(stream, steps=0)

    def test_promotion_broadcasts_hot_swap(self):
        class FakeShardedServer:
            def __init__(self, registry):
                self.registry = registry
                self.swaps = []

            def predict_many(self, x):
                live = self.registry.active(NAME)
                return list(live.model.predict(np.asarray(x)))

            def hot_swap(self, version):
                self.swaps.append(version)

        loop, stream, registry, _ = build_loop(server=None)
        server = FakeShardedServer(registry)
        loop.server = server
        loop.run(stream, steps=40)
        promoted = [
            decision.candidate_version
            for decision in loop.decisions
            if decision.action == PROMOTE
        ]
        assert promoted
        # Every promotion (and any rollback) reached the sharded tier.
        rollback_targets = [record["to"] for record in loop.rollbacks]
        assert set(server.swaps) == set(promoted) | set(rollback_targets)
        assert server.swaps[0] == promoted[0]


class TestRollback:
    def test_live_accuracy_collapse_rolls_back_to_last_known_good(self):
        loop, stream, registry, metrics = build_loop(drift_at=10_000)
        # Establish v0002 as active so v0001 becomes last-known-good.
        registry.publish(
            NAME,
            LogisticRegression(N_FEATURES, weight_init_std=0.0),
            activate=True,
        )
        assert registry.last_known_good(NAME) == "v0001"
        # Pretend v0002 was promoted while accuracy was excellent; the
        # zero-weight model then collapses the live EWMA.
        loop._accuracy_at_promotion = 0.99
        rolled = False
        for x, y in stream.batches(10):
            rolled = loop.step(x, y)["rolled_back"] or rolled
            if rolled:
                break
        assert rolled
        assert len(loop.rollbacks) == 1
        record = loop.rollbacks[0]
        assert record["from"] == "v0002"
        assert record["to"] == "v0001"
        assert registry.active_version(NAME) == "v0001"
        # Disarmed until the next promotion.
        assert loop._accuracy_at_promotion is None
        assert metrics.counter("online/rollbacks_total").value == 1


class TestTelemetryReconstruction:
    """The decision history is recoverable from the trace buffer alone."""

    def test_decisions_rebuilt_from_span_events_match_loop_state(self):
        tracer = Tracer()
        loop, stream, _, metrics = build_loop(tracer=tracer)
        loop.run(stream, steps=50)
        assert loop.decisions  # the run actually decided things

        spans = tracer.buffer.spans()
        decision_events = [
            event
            for span in spans
            if span["name"] == "online/promotion_decide"
            for event in span["events"]
            if event["name"] == "promotion_decision"
        ]
        rebuilt = [
            (event["action"], event["candidate"], event["reason"], event["step"])
            for event in decision_events
        ]
        expected = [
            (
                decision.action,
                decision.candidate_version,
                decision.reason,
                decision.step,
            )
            for decision in loop.decisions
        ]
        assert rebuilt == expected

        # Counters corroborate the same history.
        assert metrics.counter("promotion/decisions_total").value == len(
            loop.decisions
        )
        promote_count = sum(
            1 for decision in loop.decisions if decision.action == PROMOTE
        )
        assert (
            metrics.counter("online/promotions_total").value == promote_count
        )

        # Rollbacks, too, are span events.
        rollback_events = [
            event
            for span in spans
            if span["name"] == "online/rollback"
            for event in span["events"]
            if event["name"] == "rollback"
        ]
        assert len(rollback_events) == len(loop.rollbacks)
        for event, record in zip(rollback_events, loop.rollbacks):
            assert event["from"] == record["from"]
            assert event["to"] == record["to"]
