"""Online EM on decayed statistics: batch equivalence and alignment."""

import numpy as np
import pytest

from repro.core.em import em_step, merge_plan, merge_similar_components
from repro.core.gaussian_mixture import GaussianMixture
from repro.core.gm_regularizer import GMRegularizer
from repro.core.lazy import LazyUpdateSchedule
from repro.online import DecayedGMRegularizer, OnlineEMState, online_em_step


def fixed_weights(n=80, seed=7):
    return np.random.default_rng(seed).normal(0.0, 0.1, size=n)


def hyper(reg):
    return dict(alpha=reg._alpha, a=reg._a, b=reg._b)


class TestOnlineEMStep:
    def test_stationary_fixed_point_matches_batch_em(self):
        """Same fixed point as batch EM on a stationary weight vector."""
        w = fixed_weights()
        reg = GMRegularizer(w.size)
        h = hyper(reg)

        batch = reg.mixture
        for _ in range(200):
            batch = em_step(
                batch, w, h["alpha"][: batch.n_components], h["a"], h["b"]
            )

        state = OnlineEMState(mixture=reg.mixture)
        for _ in range(500):
            state = online_em_step(
                state,
                w,
                h["alpha"][: state.mixture.n_components],
                h["a"],
                h["b"],
                rho=0.8,
            )

        assert state.mixture.n_components == batch.n_components
        np.testing.assert_allclose(state.mixture.pi, batch.pi, atol=1e-3)
        np.testing.assert_allclose(
            state.mixture.lam, batch.lam, rtol=1e-3
        )

    def test_first_update_seeds_statistics(self):
        """The first observation becomes the summary (no zero-decay bias)."""
        w = fixed_weights()
        reg = GMRegularizer(w.size)
        h = hyper(reg)
        mixture = reg.mixture
        resp = mixture.responsibilities(w)
        expected_s0 = resp.sum(axis=0)
        expected_s1 = resp.T @ (w * w)

        state = online_em_step(
            OnlineEMState(mixture=mixture),
            w,
            h["alpha"][: mixture.n_components],
            h["a"],
            h["b"],
            rho=0.9,
            prune=False,
            merge=False,
        )
        np.testing.assert_allclose(state.resp_sum, expected_s0)
        np.testing.assert_allclose(state.weighted_sq, expected_s1)
        assert state.updates == 1

    def test_second_update_blends_with_rho(self):
        w = fixed_weights()
        reg = GMRegularizer(w.size)
        h = hyper(reg)
        kwargs = dict(
            alpha=h["alpha"][: reg.mixture.n_components],
            a=h["a"],
            b=h["b"],
            rho=0.5,
            prune=False,
            merge=False,
        )
        s1 = online_em_step(OnlineEMState(mixture=reg.mixture), w, **kwargs)
        resp = s1.mixture.responsibilities(w)
        fresh = resp.sum(axis=0)
        s2 = online_em_step(s1, w, **kwargs)
        np.testing.assert_allclose(
            s2.resp_sum, 0.5 * s1.resp_sum + 0.5 * fresh
        )
        assert s2.updates == 2

    @pytest.mark.parametrize("rho", [0.0, 1.0, -0.1, 1.5])
    def test_rho_out_of_range_rejected(self, rho):
        reg = GMRegularizer(8)
        with pytest.raises(ValueError, match="rho"):
            online_em_step(
                OnlineEMState(mixture=reg.mixture),
                fixed_weights(8),
                reg._alpha,
                reg._a,
                reg._b,
                rho=rho,
            )

    def test_statistics_stay_aligned_while_k_collapses(self):
        """Stats rows track the mixture through pruning and merging."""
        w = fixed_weights()
        reg = GMRegularizer(w.size)
        h = hyper(reg)
        state = OnlineEMState(mixture=reg.mixture)
        for _ in range(300):
            state = online_em_step(
                state,
                w,
                h["alpha"][: state.mixture.n_components],
                h["a"],
                h["b"],
                rho=0.8,
            )
            k = state.mixture.n_components
            assert state.resp_sum.shape == (k,)
            assert state.weighted_sq.shape == (k,)
            assert np.all(np.isfinite(state.mixture.pi))
            assert np.all(np.isfinite(state.mixture.lam))
        assert state.mixture.n_components < reg.mixture.n_components


class TestMergeUnderOnlinePath:
    """`merge_similar_components` semantics on the streaming side."""

    def test_duplicate_precisions_merge_and_sum_statistics(self):
        w = fixed_weights(40)
        mixture = GaussianMixture(
            pi=np.array([0.5, 0.5]), lam=np.array([25.0, 25.0])
        )
        reg = GMRegularizer(w.size)
        state = online_em_step(
            OnlineEMState(mixture=mixture),
            w,
            reg._alpha[:2],
            reg._a,
            reg._b,
            rho=0.9,
        )
        assert state.mixture.n_components == 1
        # With identical precisions each row's responsibilities are
        # 0.5/0.5, so the merged (summed) mass is the full sample count.
        np.testing.assert_allclose(state.resp_sum, [float(w.size)])
        assert np.isfinite(state.weighted_sq).all()

    def test_duplicate_precision_merge_matches_batch_helper(self):
        pi = np.array([0.3, 0.3, 0.4])
        lam = np.array([10.0, 10.0, 500.0])
        merged_pi, merged_lam = merge_similar_components(pi, lam)
        assert merged_pi.shape == (2,)
        np.testing.assert_allclose(merged_pi, [0.6, 0.4])
        np.testing.assert_allclose(merged_lam, [10.0, 500.0])

    def test_near_zero_mixing_weight_does_not_nan(self):
        """A vanishing component neither NaNs the merge nor the E-step."""
        pi = np.array([1e-12, 1.0 - 1e-12])
        lam = np.array([10.0, 10.0])
        merged_pi, merged_lam = merge_similar_components(pi, lam)
        assert np.isfinite(merged_pi).all()
        assert np.isfinite(merged_lam).all()
        np.testing.assert_allclose(merged_pi.sum(), 1.0)

        mixture = GaussianMixture(pi=pi, lam=np.array([10.0, 400.0]))
        resp = mixture.responsibilities(fixed_weights(30))
        assert np.isfinite(resp).all()
        np.testing.assert_allclose(resp.sum(axis=1), 1.0)

    def test_merge_plan_groups_match_applied_merge(self):
        pi = np.array([0.25, 0.25, 0.25, 0.25])
        lam = np.array([10.0, 10.1, 300.0, 301.0])
        groups = merge_plan(pi, lam, rel_tol=0.02)
        assert sorted(sorted(g) for g in groups) == [[0, 1], [2, 3]]

    def test_k_stable_once_collapsed(self):
        """After convergence, further online steps keep K fixed."""
        w = fixed_weights()
        reg = GMRegularizer(w.size)
        h = hyper(reg)
        state = OnlineEMState(mixture=reg.mixture)
        for _ in range(400):
            state = online_em_step(
                state,
                w,
                h["alpha"][: state.mixture.n_components],
                h["a"],
                h["b"],
                rho=0.8,
            )
        k = state.mixture.n_components
        for _ in range(50):
            state = online_em_step(
                state,
                w,
                h["alpha"][: state.mixture.n_components],
                h["a"],
                h["b"],
                rho=0.8,
            )
            assert state.mixture.n_components == k
            resp = state.mixture.responsibilities(w)
            assert np.isfinite(resp).all()


class TestDecayedGMRegularizer:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="rho"):
            DecayedGMRegularizer(8, rho=1.0)
        with pytest.raises(ValueError, match="warmup_steps"):
            DecayedGMRegularizer(8, warmup_steps=-1)
        with pytest.raises(ValueError, match="eager_epochs"):
            DecayedGMRegularizer(
                8,
                warmup_steps=5,
                schedule=LazyUpdateSchedule(
                    model_interval=4, gm_interval=4, eager_epochs=0
                ),
            )

    def test_warmup_steps_are_eager_then_lazy_intervals_apply(self):
        """Every warm-up step refreshes; afterwards only Im/Ig ticks do."""
        reg = DecayedGMRegularizer(
            16,
            rho=0.9,
            warmup_steps=3,
            schedule=LazyUpdateSchedule(
                model_interval=4, gm_interval=4, eager_epochs=1
            ),
        )
        w = fixed_weights(16)
        mstep_counts = []
        for it in range(8):
            reg.prepare(w, it)
            reg.update(w, it)
            mstep_counts.append(reg._n_mstep)
        # Steps 0-2 (warm-up) each ran the M-step; steps 3, 5, 6, 7
        # reused the stale mixture; step 4 hit the Ig=4 interval.
        assert mstep_counts == [1, 2, 3, 3, 4, 4, 4, 4]

    def test_zero_warmup_is_lazy_from_the_start(self):
        reg = DecayedGMRegularizer(
            16,
            warmup_steps=0,
            schedule=LazyUpdateSchedule(
                model_interval=5, gm_interval=5, eager_epochs=1
            ),
        )
        w = fixed_weights(16)
        for it in range(4):
            reg.prepare(w, it)
            reg.update(w, it)
        # Only iteration 0 (0 % 5 == 0) ran the M-step.
        assert reg._n_mstep == 1

    def test_em_state_roundtrip_carries_decayed_statistics(self):
        w = fixed_weights(24)
        reg = DecayedGMRegularizer(24, rho=0.8, warmup_steps=2)
        for it in range(5):
            reg.prepare(w, it)
            reg.update(w, it)
        snapshot = reg.em_state()
        assert snapshot.resp_sum is not None
        assert snapshot.em_updates == reg._em_updates

        resumed = DecayedGMRegularizer(24, rho=0.8, warmup_steps=2)
        resumed.load_em_state(snapshot)
        np.testing.assert_allclose(resumed.mixture.pi, reg.mixture.pi)
        np.testing.assert_allclose(resumed.mixture.lam, reg.mixture.lam)
        np.testing.assert_allclose(resumed._resp_sum, reg._resp_sum)
        np.testing.assert_allclose(resumed._weighted_sq, reg._weighted_sq)

        # The resumed stream continues identically.
        reg.upt_gm_param(w)
        resumed.upt_gm_param(w)
        np.testing.assert_allclose(resumed.mixture.pi, reg.mixture.pi)
        np.testing.assert_allclose(resumed.mixture.lam, reg.mixture.lam)
