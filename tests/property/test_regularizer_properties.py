"""Property-based tests for regularizer invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    ElasticNetRegularizer,
    GMRegularizer,
    HuberRegularizer,
    L1Regularizer,
    L2Regularizer,
)

weights = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 40),
    elements=st.floats(-10.0, 10.0, allow_nan=False),
)

strengths = st.floats(0.0, 100.0, allow_nan=False)


@given(weights, strengths)
@settings(max_examples=50, deadline=None)
def test_penalties_nonnegative_and_zero_at_origin(w, s):
    for reg in (L1Regularizer(s), L2Regularizer(s),
                ElasticNetRegularizer(s), HuberRegularizer(s)):
        assert reg.penalty(w) >= 0.0
        assert reg.penalty(np.zeros_like(w)) == 0.0


@given(weights, strengths)
@settings(max_examples=50, deadline=None)
def test_penalties_are_even_functions(w, s):
    for reg in (L1Regularizer(s), L2Regularizer(s),
                ElasticNetRegularizer(s), HuberRegularizer(s)):
        assert np.isclose(reg.penalty(w), reg.penalty(-w), rtol=1e-12)


@given(weights, strengths)
@settings(max_examples=50, deadline=None)
def test_gradients_point_away_from_origin(w, s):
    # <grad, w> >= 0 for any symmetric penalty increasing in |w|.
    for reg in (L1Regularizer(s), L2Regularizer(s),
                ElasticNetRegularizer(s), HuberRegularizer(s)):
        assert float(reg.gradient(w) @ w) >= -1e-12


@given(weights, strengths, st.floats(1.1, 3.0))
@settings(max_examples=50, deadline=None)
def test_penalties_monotone_in_scale(w, s, factor):
    for reg in (L1Regularizer(s), L2Regularizer(s),
                ElasticNetRegularizer(s), HuberRegularizer(s)):
        assert reg.penalty(factor * w) >= reg.penalty(w) - 1e-12


@given(
    hnp.arrays(np.float64, st.integers(2, 50),
               elements=st.floats(-2.0, 2.0, allow_nan=False)),
)
@settings(max_examples=40, deadline=None)
def test_gm_gradient_finite_and_shaped(w):
    reg = GMRegularizer(n_dimensions=w.size, weight_init_std=0.1)
    grad = reg.calc_reg_grad(w)
    assert grad.shape == w.shape
    assert np.all(np.isfinite(grad))
    # g_reg is also an "away from origin" force: <g, w> >= 0.
    assert float(grad @ w) >= -1e-12


@given(
    hnp.arrays(np.float64, st.integers(4, 50),
               elements=st.floats(-2.0, 2.0, allow_nan=False)),
    st.integers(1, 40),
)
@settings(max_examples=30, deadline=None)
def test_gm_em_iterations_keep_valid_mixture(w, n_steps):
    reg = GMRegularizer(n_dimensions=w.size, weight_init_std=0.1)
    for it in range(n_steps):
        reg.update(w, it)
    assert 1 <= reg.mixture.n_components <= 4
    assert np.isclose(reg.pi.sum(), 1.0, atol=1e-9)
    assert np.all(reg.lam > 0)
    assert np.all(np.isfinite(reg.lam))
