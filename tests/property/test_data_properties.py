"""Property-based tests for the data layer (Table, encoder, splits)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import Column, ColumnType, Table, TabularEncoder
from repro.linear import stratified_k_fold, stratified_train_test_split


@st.composite
def small_tables(draw):
    n = draw(st.integers(2, 40))
    n_cont = draw(st.integers(0, 3))
    n_cat = draw(st.integers(0 if n_cont else 1, 3))
    columns = []
    for j in range(n_cont):
        values = np.asarray(
            draw(st.lists(
                st.one_of(st.floats(-100, 100), st.just(float("nan"))),
                min_size=n, max_size=n,
            )),
            dtype=np.float64,
        )
        columns.append(Column(f"num{j}", ColumnType.CONTINUOUS, values))
    for j in range(n_cat):
        values = np.asarray(
            draw(st.lists(
                st.one_of(st.sampled_from(["a", "b", "c"]), st.none()),
                min_size=n, max_size=n,
            )),
            dtype=object,
        )
        columns.append(Column(f"cat{j}", ColumnType.CATEGORICAL, values))
    return Table(columns)


@given(small_tables())
@settings(max_examples=50, deadline=None)
def test_encoder_output_is_finite(table):
    x = TabularEncoder().fit_transform(table)
    assert x.shape[0] == table.n_rows
    assert np.all(np.isfinite(x))


@given(small_tables())
@settings(max_examples=50, deadline=None)
def test_encoder_transform_idempotent_on_training_data(table):
    enc = TabularEncoder()
    x1 = enc.fit_transform(table)
    x2 = enc.transform(table)
    assert np.array_equal(x1, x2)


@given(small_tables())
@settings(max_examples=50, deadline=None)
def test_take_roundtrip_preserves_table(table):
    indices = np.arange(table.n_rows)
    assert table.take(indices).equals(table)


@given(
    st.lists(st.integers(0, 1), min_size=4, max_size=200),
    st.floats(0.1, 0.4),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_split_partition_property(labels, fraction, seed):
    y = np.asarray(labels)
    if np.unique(y).size < 2:
        y[0] = 1 - y[0]
        y[1] = 1 - y[1]
    rng = np.random.default_rng(seed)
    train, test = stratified_train_test_split(y, fraction, rng)
    combined = np.sort(np.concatenate([train, test]))
    assert np.array_equal(combined, np.arange(y.size))


@given(
    st.lists(st.integers(0, 1), min_size=6, max_size=100),
    st.integers(2, 4),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_k_fold_partition_property(labels, n_folds, seed):
    y = np.asarray(labels)
    rng = np.random.default_rng(seed)
    seen = []
    for train, val in stratified_k_fold(y, n_folds, rng):
        assert len(set(train) & set(val)) == 0
        seen.extend(val.tolist())
    assert sorted(seen) == list(range(y.size))
