"""Property-based tests (hypothesis) for the GM core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    GaussianMixture,
    update_mixing_coefficients,
    update_precisions,
)
from repro.core.em import merge_similar_components

# Strategy: a valid mixture (K in 1..5, positive finite precisions).
@st.composite
def mixtures(draw):
    k = draw(st.integers(min_value=1, max_value=5))
    raw_pi = draw(
        st.lists(st.floats(0.01, 1.0), min_size=k, max_size=k)
    )
    pi = np.asarray(raw_pi)
    pi = pi / pi.sum()
    lam = np.asarray(
        draw(st.lists(st.floats(1e-4, 1e6), min_size=k, max_size=k))
    )
    return GaussianMixture(pi=pi, lam=lam)


weights_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 60),
    elements=st.floats(-5.0, 5.0, allow_nan=False),
)


@given(mixtures(), weights_arrays)
@settings(max_examples=60, deadline=None)
def test_responsibilities_form_distribution(gm, w):
    resp = gm.responsibilities(w)
    assert resp.shape == (w.size, gm.n_components)
    assert np.all(resp >= -1e-12)
    assert np.allclose(resp.sum(axis=1), 1.0, atol=1e-9)


@given(mixtures(), weights_arrays)
@settings(max_examples=60, deadline=None)
def test_log_pdf_finite(gm, w):
    log_density = gm.log_pdf(w)
    assert np.all(np.isfinite(log_density))


@given(mixtures())
@settings(max_examples=60, deadline=None)
def test_crossovers_nonnegative_and_bounded_count(gm):
    points = gm.crossover_points()
    assert np.all(points >= 0.0)
    assert points.size <= gm.n_components - 1 if gm.n_components > 1 \
        else points.size == 0


@given(
    mixtures(),
    weights_arrays,
    st.floats(1.0, 10.0),
    st.floats(1e-6, 100.0),
)
@settings(max_examples=60, deadline=None)
def test_precision_update_always_valid(gm, w, a, b):
    resp = gm.responsibilities(w)
    lam = update_precisions(resp, w, a=a, b=b)
    assert lam.shape == (gm.n_components,)
    assert np.all(lam > 0)
    assert np.all(np.isfinite(lam))


@given(mixtures(), weights_arrays, st.floats(0.1, 100.0))
@settings(max_examples=60, deadline=None)
def test_mixing_update_stays_on_simplex(gm, w, alpha_value):
    resp = gm.responsibilities(w)
    alpha = np.full(gm.n_components, alpha_value)
    pi = update_mixing_coefficients(resp, alpha)
    assert np.all(pi >= 0.0)
    assert np.isclose(pi.sum(), 1.0, atol=1e-9)


@given(mixtures())
@settings(max_examples=60, deadline=None)
def test_merge_preserves_total_mass_and_order(gm):
    pi, lam = merge_similar_components(gm.pi, gm.lam)
    assert np.isclose(pi.sum(), 1.0, atol=1e-9)
    assert np.all(np.diff(lam) >= 0.0)
    assert pi.size == lam.size <= gm.n_components


@given(mixtures(), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_samples_have_finite_values(gm, seed):
    samples = gm.sample(100, np.random.default_rng(seed))
    assert samples.shape == (100,)
    assert np.all(np.isfinite(samples))
