"""Unit tests for learning-rate schedules."""

import pytest

from repro.optim import ConstantLR, ExponentialDecayLR, StepDecayLR


def test_constant_lr():
    sched = ConstantLR(0.1)
    assert sched.lr_at(0) == 0.1
    assert sched.lr_at(100) == 0.1


def test_step_decay_applies_milestones():
    sched = StepDecayLR(0.1, {80: 0.1, 120: 0.1})
    assert sched.lr_at(0) == pytest.approx(0.1)
    assert sched.lr_at(80) == pytest.approx(0.01)
    assert sched.lr_at(119) == pytest.approx(0.01)
    assert sched.lr_at(120) == pytest.approx(0.001)


def test_step_decay_unordered_milestones():
    sched = StepDecayLR(1.0, {20: 0.5, 10: 0.5})
    assert sched.lr_at(15) == pytest.approx(0.5)
    assert sched.lr_at(25) == pytest.approx(0.25)


def test_exponential_decay():
    sched = ExponentialDecayLR(1.0, 0.5)
    assert sched.lr_at(0) == 1.0
    assert sched.lr_at(3) == pytest.approx(0.125)


@pytest.mark.parametrize("make", [
    lambda: ConstantLR(0.0),
    lambda: StepDecayLR(0.0, {}),
    lambda: StepDecayLR(0.1, {-1: 0.5}),
    lambda: StepDecayLR(0.1, {10: 0.0}),
    lambda: ExponentialDecayLR(1.0, 0.0),
    lambda: ExponentialDecayLR(1.0, 1.5),
])
def test_invalid_schedules_rejected(make):
    with pytest.raises(ValueError):
        make()


def test_negative_epoch_rejected():
    with pytest.raises(ValueError):
        ConstantLR(0.1).lr_at(-1)
