"""Unit tests for the Algorithm 1/2 training loop."""

import numpy as np
import pytest

from repro.core import GMRegularizer, L2Regularizer, LazyUpdateSchedule
from repro.linear import LogisticRegression
from repro.optim import ConstantLR, Parameter, StepDecayLR, Trainer


class QuadraticModel:
    """Minimal TrainableModel: loss = 0.5 * ||w - x_mean||^2 per batch."""

    def __init__(self, dim, regularizer=None):
        self.w = np.zeros(dim)
        self._params = [Parameter("w", self.w, regularizer)]

    def parameters(self):
        return self._params

    def loss_and_gradients(self, x, y):
        target = x.mean(axis=0)
        diff = self.w - target
        return 0.5 * float(diff @ diff), [diff.copy()]

    def predict(self, x):
        return np.zeros(x.shape[0], dtype=np.int64)


def make_data(rng, n=64, dim=4):
    x = rng.normal(size=(n, dim)) + 3.0
    y = np.zeros(n, dtype=np.int64)
    return x, y


def test_trainer_reduces_loss(rng):
    x, y = make_data(rng)
    model = QuadraticModel(4)
    history = Trainer(model, lr=0.3, batch_size=16).fit(
        x, y, epochs=30, rng=rng
    )
    assert history.records[-1].train_loss < history.records[0].train_loss
    assert np.allclose(model.w, x.mean(axis=0), atol=0.5)


def test_history_records_every_epoch(rng):
    x, y = make_data(rng)
    history = Trainer(QuadraticModel(4), lr=0.1, batch_size=16).fit(
        x, y, epochs=5, rng=rng
    )
    assert [r.epoch for r in history.records] == [0, 1, 2, 3, 4]
    assert np.all(np.diff(history.cumulative_times()) >= 0.0)


def test_convergence_early_stop(rng):
    x, y = make_data(rng)
    trainer = Trainer(
        QuadraticModel(4), lr=0.5, batch_size=64,
        convergence_tol=1e-6, patience=2,
    )
    history = trainer.fit(x, y, epochs=200, rng=rng)
    assert history.converged_epoch is not None
    assert len(history.records) < 200


def test_validation_accuracy_recorded(rng):
    x, y = make_data(rng)
    history = Trainer(QuadraticModel(4), lr=0.1, batch_size=16).fit(
        x, y, epochs=2, rng=rng, x_val=x, y_val=y
    )
    assert history.records[-1].val_accuracy == 1.0  # predicts all zeros


def test_reg_scale_is_one_over_n(rng):
    # With the quadratic model at its optimum, the only gradient is the
    # regularizer's, scaled by 1/N.
    x, y = make_data(rng, n=50)
    target = x.mean(axis=0)
    model = QuadraticModel(4, regularizer=L2Regularizer(strength=100.0))
    model.w[...] = target
    trainer = Trainer(model, lr=1.0, batch_size=50, shuffle=False)
    trainer.fit(x, y, epochs=1, rng=rng)
    # One step: w <- w - lr * (0 + (1/50) * 100 * w) = w * (1 - 2) = -w.
    assert np.allclose(model.w, -target, atol=1e-9)


def test_lr_schedule_applied_per_epoch(rng):
    x, y = make_data(rng)
    sched = StepDecayLR(0.5, {1: 1e-12})  # lr collapses after epoch 0
    model = QuadraticModel(4)
    Trainer(model, lr=sched, batch_size=64).fit(x, y, epochs=1, rng=rng)
    w_after_first = model.w.copy()
    Trainer(model, lr=ConstantLR(1e-12), batch_size=64).fit(
        x, y, epochs=1, rng=rng
    )
    assert np.allclose(model.w, w_after_first, atol=1e-9)


def test_gm_regularizer_em_runs_inside_training(rng):
    x = rng.normal(size=(80, 10))
    y = (x[:, 0] > 0).astype(np.int64)
    reg = GMRegularizer(n_dimensions=10)
    model = LogisticRegression(10, regularizer=reg, rng=rng)
    Trainer(model, lr=0.3, batch_size=16).fit(x, y, epochs=4, rng=rng)
    # 80/16 = 5 batches x 4 epochs = 20 iterations of eager EM.
    assert reg.mstep_count == 20
    assert reg.estep_count >= 20


def test_lazy_schedule_reduces_em_invocations(rng):
    x = rng.normal(size=(80, 10))
    y = (x[:, 0] > 0).astype(np.int64)
    sched = LazyUpdateSchedule(model_interval=5, gm_interval=10, eager_epochs=1)
    reg = GMRegularizer(n_dimensions=10, schedule=sched)
    model = LogisticRegression(10, regularizer=reg, rng=rng)
    Trainer(model, lr=0.3, batch_size=16).fit(x, y, epochs=4, rng=rng)
    # Epoch 0 eager: 5 E-steps; epochs 1-3 (its 5..19): every 5th -> 3.
    assert reg.estep_count == 8
    # M-steps: epoch 0: 5; its 10 -> 1.
    assert reg.mstep_count == 6


def test_invalid_arguments_rejected(rng):
    x, y = make_data(rng)
    with pytest.raises(ValueError):
        Trainer(QuadraticModel(4), batch_size=0)
    with pytest.raises(ValueError):
        Trainer(QuadraticModel(4)).fit(x, y, epochs=0, rng=rng)
    with pytest.raises(ValueError):
        Trainer(QuadraticModel(4)).fit(x, y[:-1], epochs=1, rng=rng)


def test_augment_hook_called(rng):
    x, y = make_data(rng)
    calls = []

    def augment(batch, _rng):
        calls.append(batch.shape[0])
        return batch

    Trainer(QuadraticModel(4), lr=0.1, batch_size=16).fit(
        x, y, epochs=1, rng=rng, augment=augment
    )
    assert sum(calls) == 64


def test_injectable_clock_drives_epoch_records(rng):
    # A fake clock advancing 1.0 per read makes every recorded duration
    # an exact integer -- no sleeping, no tolerance windows.
    ticks = iter(float(i) for i in range(100_000))
    x, y = make_data(rng)
    trainer = Trainer(QuadraticModel(4), lr=0.1, batch_size=16,
                      clock=lambda: next(ticks))
    history = trainer.fit(x, y, epochs=3, rng=rng)
    for record in history.records:
        assert record.elapsed_seconds == int(record.elapsed_seconds) > 0
    deltas = np.diff(history.cumulative_times())
    assert np.all(deltas > 0)
    # Both epoch records and phase timers use the same injected clock.
    assert trainer.metrics.clock is not None
    assert all(v == int(v) for v in trainer.metrics.phase_seconds().values())


def test_phase_timers_cover_all_algorithm2_phases(rng):
    x, y = make_data(rng)
    trainer = Trainer(QuadraticModel(4), lr=0.1, batch_size=16)
    trainer.fit(x, y, epochs=2, rng=rng)
    phases = trainer.metrics.phase_seconds()
    assert set(phases) == {"estep", "grad", "mstep", "sgd"}
    # 64/16 = 4 batches x 2 epochs: each phase timed once per batch.
    assert trainer.metrics.timer("phase/grad").count == 8
    assert trainer.metrics.counter("train/batches").value == 8
    assert trainer.metrics.counter("train/epochs").value == 2


def test_metrics_reset_between_fits(rng):
    x, y = make_data(rng)
    trainer = Trainer(QuadraticModel(4), lr=0.1, batch_size=16)
    trainer.fit(x, y, epochs=2, rng=rng)
    trainer.fit(x, y, epochs=1, rng=rng)
    # Counters reflect only the most recent fit.
    assert trainer.metrics.counter("train/epochs").value == 1
    assert trainer.metrics.counter("train/batches").value == 4


def test_em_refresh_gauges_published_for_gm_runs(rng):
    x = rng.normal(size=(80, 10))
    y = (x[:, 0] > 0).astype(np.int64)
    reg = GMRegularizer(n_dimensions=10)
    model = LogisticRegression(10, regularizer=reg, rng=rng)
    trainer = Trainer(model, lr=0.3, batch_size=16)
    trainer.fit(x, y, epochs=4, rng=rng)
    gauges = trainer.metrics.snapshot()["gauges"]
    assert gauges["em/estep_refreshes"] == reg.estep_count
    assert gauges["em/mstep_refreshes"] == reg.mstep_count
    # No GM regularizer -> no EM gauges at all.
    plain = Trainer(QuadraticModel(4), lr=0.1, batch_size=16)
    plain.fit(*make_data(rng), epochs=1, rng=rng)
    assert "em/estep_refreshes" not in plain.metrics.snapshot()["gauges"]


def test_shuffle_off_is_deterministic(rng):
    x, y = make_data(rng)
    m1, m2 = QuadraticModel(4), QuadraticModel(4)
    Trainer(m1, lr=0.1, batch_size=16, shuffle=False).fit(
        x, y, epochs=3, rng=np.random.default_rng(1)
    )
    Trainer(m2, lr=0.1, batch_size=16, shuffle=False).fit(
        x, y, epochs=3, rng=np.random.default_rng(999)
    )
    assert np.allclose(m1.w, m2.w)


def test_fit_emits_training_spans_under_ambient_tracer(rng):
    from repro.telemetry.trace import Tracer, use_tracer

    x, y = make_data(rng)
    tracer = Tracer(sample_rate=1.0)
    with use_tracer(tracer):
        Trainer(QuadraticModel(4), lr=0.1, batch_size=16).fit(
            x, y, epochs=3, rng=rng
        )
    spans = tracer.buffer.spans()
    by_name = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(span)

    fit = by_name["train/fit"]
    assert len(fit) == 1
    assert fit[0]["parent_id"] is None
    assert fit[0]["attributes"]["epochs"] == 3

    epochs = by_name["train/epoch"]
    assert len(epochs) == 3
    assert [e["attributes"]["epoch"] for e in epochs] == [0, 1, 2]
    for epoch in epochs:
        assert epoch["trace_id"] == fit[0]["trace_id"]
        assert epoch["parent_id"] == fit[0]["span_id"]
        assert "loss" in epoch["attributes"]

    # Per-phase synthetic children hang off their epoch span.
    phase_spans = [s for s in spans if s["name"].startswith("train/phase") or
                   s["name"] in ("train/estep", "train/grad",
                                 "train/mstep", "train/sgd")]
    assert phase_spans, "expected per-phase child spans"
    epoch_ids = {e["span_id"] for e in epochs}
    for span in phase_spans:
        assert span["parent_id"] in epoch_ids
        assert span["duration"] >= 0.0


def test_fit_without_tracer_adds_no_spans(rng):
    from repro.telemetry.trace import current_span, current_tracer

    x, y = make_data(rng)
    Trainer(QuadraticModel(4), lr=0.1, batch_size=16).fit(
        x, y, epochs=1, rng=rng
    )
    assert current_tracer() is None
    assert current_span() is None
