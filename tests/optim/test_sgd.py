"""Unit tests for the SGD optimizer."""

import numpy as np
import pytest

from repro.optim import SGD


def test_vanilla_sgd_update_rule():
    w = np.array([1.0, -2.0])
    opt = SGD([w], lr=0.1)
    opt.step([np.array([0.5, -0.5])])
    assert np.allclose(w, [0.95, -1.95])


def test_momentum_accumulates_velocity():
    w = np.zeros(1)
    opt = SGD([w], lr=1.0, momentum=0.9)
    g = [np.array([1.0])]
    opt.step(g)  # v = -1, w = -1
    opt.step(g)  # v = -1.9, w = -2.9
    assert np.isclose(w[0], -2.9)


def test_momentum_zero_equals_vanilla(rng):
    w1 = rng.normal(size=5)
    w2 = w1.copy()
    opt1 = SGD([w1], lr=0.05)
    opt2 = SGD([w2], lr=0.05, momentum=0.0)
    g = rng.normal(size=5)
    opt1.step([g])
    opt2.step([g])
    assert np.allclose(w1, w2)


def test_updates_multiple_params_in_place():
    a, b = np.ones(2), np.ones(3)
    opt = SGD([a, b], lr=0.5)
    opt.step([np.ones(2), 2 * np.ones(3)])
    assert np.allclose(a, 0.5)
    assert np.allclose(b, 0.0)


def test_gradient_count_mismatch_rejected():
    opt = SGD([np.zeros(2)], lr=0.1)
    with pytest.raises(ValueError):
        opt.step([np.zeros(2), np.zeros(2)])


def test_set_lr_changes_step_size():
    w = np.zeros(1)
    opt = SGD([w], lr=0.1)
    opt.set_lr(1.0)
    opt.step([np.array([1.0])])
    assert np.isclose(w[0], -1.0)


@pytest.mark.parametrize("kwargs", [
    {"lr": 0.0}, {"lr": -0.1}, {"lr": 0.1, "momentum": 1.0},
    {"lr": 0.1, "momentum": -0.1},
])
def test_invalid_hyperparameters_rejected(kwargs):
    with pytest.raises(ValueError):
        SGD([np.zeros(1)], **kwargs)


def test_empty_params_rejected():
    with pytest.raises(ValueError):
        SGD([], lr=0.1)


def test_set_lr_rejects_nonpositive():
    opt = SGD([np.zeros(1)], lr=0.1)
    with pytest.raises(ValueError):
        opt.set_lr(0.0)


def test_converges_on_quadratic(rng):
    # Minimize 0.5 * ||w - target||^2.
    target = rng.normal(size=10)
    w = np.zeros(10)
    opt = SGD([w], lr=0.2, momentum=0.5)
    for _ in range(200):
        opt.step([w - target])
    assert np.allclose(w, target, atol=1e-6)
