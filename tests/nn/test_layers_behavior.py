"""Behavioural unit tests for individual layers (beyond gradient checks)."""

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    SoftmaxCrossEntropy,
    softmax,
)


def test_dense_affine_map(rng):
    layer = Dense("d", 3, 2, weight_init_std=0.0, rng=rng)
    layer.weight[...] = [[1, 0], [0, 1], [1, 1]]
    layer.bias[...] = [10, 20]
    out = layer.forward(np.array([[1.0, 2.0, 3.0]]), training=False)
    assert np.allclose(out, [[14.0, 25.0]])


def test_conv_matches_manual_cross_correlation(rng):
    layer = Conv2D("c", 1, 1, 2, stride=1, pad=0, weight_init_std=0.0, rng=rng)
    layer.weight[...] = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
    layer.bias[...] = [0.5]
    x = np.arange(9, dtype=np.float64).reshape(1, 1, 3, 3)
    out = layer.forward(x, training=False)
    # Top-left: 0*1 + 1*2 + 3*3 + 4*4 + 0.5 = 27.5
    assert out.shape == (1, 1, 2, 2)
    assert np.isclose(out[0, 0, 0, 0], 27.5)


def test_conv_same_padding_preserves_spatial():
    layer = Conv2D("c", 3, 8, 5, stride=1, pad=2, rng=np.random.default_rng(0))
    out = layer.forward(np.zeros((2, 3, 16, 16)), training=False)
    assert out.shape == (2, 8, 16, 16)


def test_conv_rejects_wrong_channels():
    layer = Conv2D("c", 3, 4, 3, rng=np.random.default_rng(0))
    with pytest.raises(ValueError):
        layer.forward(np.zeros((1, 2, 8, 8)), training=False)


def test_maxpool_selects_maximum():
    x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
    out = MaxPool2D("mp", 2, 2).forward(x, training=False)
    assert np.allclose(out, [[[[4.0]]]])


def test_avgpool_averages():
    x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
    out = AvgPool2D("ap", 2, 2).forward(x, training=False)
    assert np.allclose(out, [[[[2.5]]]])


def test_relu_zeroes_negatives():
    out = ReLU("r").forward(np.array([[-1.0, 0.0, 2.0]]), training=False)
    assert np.allclose(out, [[0.0, 0.0, 2.0]])


def test_batchnorm_normalizes_in_training(rng):
    bn = BatchNorm2D("bn", 4)
    x = rng.normal(3.0, 2.0, size=(16, 4, 5, 5))
    out = bn.forward(x, training=True)
    assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
    assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)


def test_batchnorm_running_stats_used_at_inference(rng):
    bn = BatchNorm2D("bn", 2, momentum=0.0)  # running stats = last batch
    x = rng.normal(5.0, 3.0, size=(32, 2, 4, 4))
    bn.forward(x, training=True)
    out = bn.forward(x, training=False)
    assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=0.05)


def test_batchnorm_gamma_beta_affect_output(rng):
    bn = BatchNorm2D("bn", 2)
    bn.gamma[...] = [2.0, 1.0]
    bn.beta[...] = [0.0, 5.0]
    x = rng.normal(size=(8, 2, 3, 3))
    out = bn.forward(x, training=True)
    assert np.allclose(out.mean(axis=(0, 2, 3)), [0.0, 5.0], atol=1e-6)
    assert np.allclose(out.std(axis=(0, 2, 3)), [2.0, 1.0], atol=1e-2)


def test_batchnorm_regularizable_keys_empty():
    assert BatchNorm2D("bn", 2).regularizable_keys() == []


def test_lrn_identity_when_alpha_zero(rng):
    lrn = LocalResponseNorm("lrn", alpha=0.0)
    x = rng.normal(size=(2, 4, 3, 3))
    assert np.allclose(lrn.forward(x, training=False), x)


def test_lrn_suppresses_high_energy_channels(rng):
    lrn = LocalResponseNorm("lrn", size=3, alpha=1.0, beta=0.75)
    x = np.ones((1, 3, 1, 1))
    out = lrn.forward(x, training=False)
    assert np.all(out < 1.0)  # denominators > 1


def test_softmax_rows_sum_to_one(rng):
    probs = softmax(rng.normal(size=(5, 10)))
    assert np.allclose(probs.sum(axis=1), 1.0)
    assert np.all(probs > 0)


def test_softmax_stable_with_large_logits():
    probs = softmax(np.array([[1000.0, 0.0]]))
    assert np.isclose(probs[0, 0], 1.0)


def test_cross_entropy_loss_and_gradient(rng):
    head = SoftmaxCrossEntropy()
    logits = rng.normal(size=(6, 4))
    labels = rng.integers(0, 4, size=6)
    loss, grad = head.loss_and_gradient(logits.copy(), labels)
    # Numeric check on the logits.
    eps = 1e-6
    for i in range(6):
        for j in range(4):
            lp = logits.copy()
            lp[i, j] += eps
            lm = logits.copy()
            lm[i, j] -= eps
            num = (head.loss_and_gradient(lp, labels)[0]
                   - head.loss_and_gradient(lm, labels)[0]) / (2 * eps)
            assert grad[i, j] == pytest.approx(num, abs=1e-5)


def test_cross_entropy_validates_labels(rng):
    head = SoftmaxCrossEntropy()
    with pytest.raises(ValueError):
        head.loss_and_gradient(rng.normal(size=(3, 2)), np.array([0, 1, 2]))
    with pytest.raises(ValueError):
        head.loss_and_gradient(rng.normal(size=(3, 2)), np.array([0, 1]))


def test_cross_entropy_perfect_prediction_near_zero_loss():
    head = SoftmaxCrossEntropy()
    logits = np.array([[100.0, 0.0], [0.0, 100.0]])
    loss, _ = head.loss_and_gradient(logits, np.array([0, 1]))
    assert loss < 1e-6
