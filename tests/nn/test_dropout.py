"""Tests for the inverted dropout layer."""

import numpy as np
import pytest

from repro.nn.layers import Dropout


def test_inference_is_identity(rng):
    layer = Dropout("d", drop_prob=0.5, rng=rng)
    x = rng.normal(size=(8, 10))
    assert np.array_equal(layer.forward(x, training=False), x)


def test_training_zeroes_roughly_drop_prob(rng):
    layer = Dropout("d", drop_prob=0.3, rng=rng)
    x = np.ones((100, 100))
    out = layer.forward(x, training=True)
    zero_fraction = np.mean(out == 0.0)
    assert abs(zero_fraction - 0.3) < 0.03


def test_inverted_scaling_preserves_expectation(rng):
    layer = Dropout("d", drop_prob=0.4, rng=rng)
    x = np.ones((200, 200))
    out = layer.forward(x, training=True)
    assert abs(out.mean() - 1.0) < 0.02


def test_backward_uses_same_mask(rng):
    layer = Dropout("d", drop_prob=0.5, rng=rng)
    x = rng.normal(size=(5, 6))
    out = layer.forward(x, training=True)
    grad = layer.backward(np.ones_like(x))
    # Gradient is zero exactly where the forward output was zeroed.
    assert np.array_equal(grad == 0.0, out == 0.0)


def test_zero_drop_prob_identity_everywhere(rng):
    layer = Dropout("d", drop_prob=0.0, rng=rng)
    x = rng.normal(size=(4, 4))
    assert np.array_equal(layer.forward(x, training=True), x)
    assert np.array_equal(layer.backward(x), x)


def test_backward_before_forward_raises(rng):
    layer = Dropout("d", drop_prob=0.5, rng=rng)
    with pytest.raises(RuntimeError):
        layer.backward(np.zeros((2, 2)))


def test_invalid_drop_prob_rejected():
    with pytest.raises(ValueError):
        Dropout("d", drop_prob=1.0)
    with pytest.raises(ValueError):
        Dropout("d", drop_prob=-0.1)


def test_no_trainable_parameters(rng):
    assert Dropout("d", rng=rng).n_parameters == 0
