"""Tests for the Network container and the Table III architectures."""

import numpy as np
import pytest

from repro.core import GMRegularizer, L2Regularizer
from repro.nn import Network, alex_cifar10, resnet20, resnet_cifar
from repro.nn.layers import Dense, ReLU
from repro.optim import Trainer


def tiny_mlp(rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    return Network([
        Dense("fc1", 8, 16, rng=rng),
        ReLU("relu1"),
        Dense("fc2", 16, 3, rng=rng),
    ], name="tiny")


def test_network_forward_shape(rng):
    net = tiny_mlp()
    out = net.forward(rng.normal(size=(5, 8)), training=False)
    assert out.shape == (5, 3)


def test_network_gradient_check(rng):
    net = tiny_mlp()
    x = rng.normal(size=(4, 8))
    y = rng.integers(0, 3, size=4)
    _loss, grads = net.loss_and_gradients(x, y)
    eps = 1e-6
    for param, grad in zip(net.parameters(), grads):
        flat = param.value.reshape(-1)
        gflat = grad.reshape(-1)
        for i in range(0, flat.size, max(1, flat.size // 5)):
            original = flat[i]
            flat[i] = original + eps
            lp, _ = net.loss_and_gradients(x, y)
            flat[i] = original - eps
            lm, _ = net.loss_and_gradients(x, y)
            flat[i] = original
            assert gflat[i] == pytest.approx((lp - lm) / (2 * eps), abs=1e-4), \
                param.name


def test_network_trains_to_fit_small_data(rng):
    net = tiny_mlp()
    x = rng.normal(size=(30, 8))
    y = rng.integers(0, 3, size=30)
    Trainer(net, lr=0.5, batch_size=10).fit(x, y, epochs=100, rng=rng)
    assert np.mean(net.predict(x) == y) > 0.9


def test_attach_regularizers_weights_only():
    net = tiny_mlp()
    net.attach_regularizers(lambda name, m, std: L2Regularizer(1.0))
    regs = net.weight_regularizers()
    assert set(regs) == {"fc1/weight", "fc2/weight"}
    for param in net.parameters():
        if param.name.endswith("/weight"):
            assert param.regularizer is not None
        else:
            assert param.regularizer is None


def test_attach_regularizers_factory_arguments():
    net = tiny_mlp()
    seen = {}

    def factory(name, m, std):
        seen[name] = (m, std)
        return None

    net.attach_regularizers(factory)
    assert seen["fc1/weight"][0] == 8 * 16
    assert seen["fc2/weight"][0] == 16 * 3


def test_predict_batched_matches_full(rng):
    net = tiny_mlp()
    x = rng.normal(size=(20, 8))
    assert np.array_equal(net.predict(x, batch_size=7), net.predict(x))


def test_empty_network_rejected():
    with pytest.raises(ValueError):
        Network([])


def test_alex_weight_count_matches_paper():
    model = alex_cifar10(image_size=32, seed=0)
    weights_only = sum(
        p.value.size for p in model.parameters() if p.name.endswith("/weight")
    )
    assert weights_only == 89440  # the paper's Alex-CIFAR-10 dimension


def test_alex_forward_shape():
    model = alex_cifar10(image_size=16, width_scale=0.5, seed=0)
    out = model.forward(np.zeros((2, 3, 16, 16)), training=False)
    assert out.shape == (2, 10)


def test_alex_rejects_bad_image_size():
    with pytest.raises(ValueError):
        alex_cifar10(image_size=20)


def test_resnet20_depth():
    model = resnet20(seed=0)
    # 6n+2 weighted layers: conv1 + 9 blocks x 2 convs + dense = 20
    conv_and_dense = [
        p.name for p in model.parameters()
        if p.name.endswith("/weight") and "br2" not in p.name
    ]
    assert len(conv_and_dense) == 20


def test_resnet_layer_names_match_table5():
    model = resnet20(seed=0)
    names = {p.name for p in model.parameters()}
    for expected in ("conv1/weight", "2a-br1-conv1/weight",
                     "3a-br2-conv/weight", "4a-br1-conv2/weight",
                     "ip5/weight"):
        assert expected in names


def test_resnet_forward_shape():
    model = resnet_cifar(n_blocks_per_stage=1, base_width=8, seed=0)
    out = model.forward(np.zeros((2, 3, 16, 16), dtype=np.float64),
                        training=False)
    assert out.shape == (2, 10)


def test_per_layer_gm_regularizers_are_distinct():
    model = alex_cifar10(image_size=16, width_scale=0.25, seed=0)
    model.attach_regularizers(
        lambda name, m, std: GMRegularizer(n_dimensions=m, weight_init_std=std)
    )
    regs = model.weight_regularizers()
    assert len(regs) == 4  # conv1-3 + dense
    assert len({id(r) for r in regs.values()}) == 4


def test_network_summary_mentions_all_layers():
    net = tiny_mlp()
    summary = net.summary()
    for name in ("fc1", "relu1", "fc2"):
        assert name in summary
