"""Unit tests for the im2col/col2im lowering."""

import numpy as np
import pytest

from repro.nn.im2col import col2im, conv_output_size, im2col


def test_output_size_formula():
    assert conv_output_size(32, 3, 1, 1) == 32
    assert conv_output_size(32, 2, 2, 0) == 16
    assert conv_output_size(5, 3, 2, 0) == 2


def test_output_size_rejects_oversized_kernel():
    with pytest.raises(ValueError):
        conv_output_size(2, 5, 1, 0)


def test_im2col_identity_kernel():
    x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
    col, oh, ow = im2col(x, 1, 1, 1, 0)
    assert (oh, ow) == (4, 4)
    assert np.allclose(col.reshape(-1), x.reshape(-1))


def test_im2col_extracts_correct_patches():
    x = np.arange(9, dtype=np.float64).reshape(1, 1, 3, 3)
    col, oh, ow = im2col(x, 2, 2, 1, 0)
    assert (oh, ow) == (2, 2)
    # First patch is the top-left 2x2 window.
    assert np.allclose(col[0], [0, 1, 3, 4])
    assert np.allclose(col[3], [4, 5, 7, 8])


def test_im2col_respects_padding():
    x = np.ones((1, 1, 2, 2))
    col, oh, ow = im2col(x, 3, 3, 1, 1)
    assert (oh, ow) == (2, 2)
    # Top-left window sees 5 zeros from the pad border.
    assert col[0].sum() == 4.0


def test_col2im_inverts_for_nonoverlapping_windows(rng):
    x = rng.normal(size=(2, 3, 4, 4))
    col, _, _ = im2col(x, 2, 2, 2, 0)
    back = col2im(col, x.shape, 2, 2, 2, 0)
    assert np.allclose(back, x)


def test_col2im_sums_overlaps():
    x = np.ones((1, 1, 3, 3))
    col, _, _ = im2col(x, 2, 2, 1, 0)
    back = col2im(col, x.shape, 2, 2, 1, 0)
    # Center pixel is covered by all four 2x2 windows.
    assert back[0, 0, 1, 1] == 4.0
    assert back[0, 0, 0, 0] == 1.0


def test_im2col_channel_layout(rng):
    # Each row is laid out [channel][kh][kw].
    x = rng.normal(size=(1, 2, 2, 2))
    col, _, _ = im2col(x, 2, 2, 1, 0)
    assert col.shape == (1, 8)
    assert np.allclose(col[0, :4], x[0, 0].reshape(-1))
    assert np.allclose(col[0, 4:], x[0, 1].reshape(-1))
