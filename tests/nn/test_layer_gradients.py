"""Finite-difference gradient checks for every layer type.

This is the framework's primary correctness evidence: every hand-derived
backward pass is compared against central differences of the forward
pass on small random inputs.
"""

import numpy as np
import pytest

from repro.nn import check_layer_gradients
from repro.nn.layers import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool2D,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    ResidualBlock,
    Sigmoid,
    Tanh,
)

TOL = 1e-5


def build_cases(rng):
    return [
        (Dense("dense", 6, 4, rng=rng), rng.standard_normal((3, 6))),
        (Conv2D("conv", 2, 3, 3, stride=1, pad=1, rng=rng),
         rng.standard_normal((2, 2, 5, 5))),
        (Conv2D("conv_s2", 3, 2, 3, stride=2, pad=1, rng=rng),
         rng.standard_normal((2, 3, 6, 6))),
        (MaxPool2D("maxpool", 2, 2), rng.standard_normal((2, 2, 4, 4))),
        (AvgPool2D("avgpool", 2, 2), rng.standard_normal((2, 2, 4, 4))),
        (AvgPool2D("avgpool3", 3, 2, pad=1), rng.standard_normal((1, 2, 5, 5))),
        (GlobalAvgPool2D("gap"), rng.standard_normal((2, 3, 4, 4))),
        (BatchNorm2D("bn", 3), rng.standard_normal((4, 3, 3, 3))),
        (LocalResponseNorm("lrn"), rng.standard_normal((2, 5, 3, 3))),
        (ReLU("relu"), rng.standard_normal((3, 7)) + 0.05),
        (Sigmoid("sigmoid"), rng.standard_normal((3, 7))),
        (Tanh("tanh"), rng.standard_normal((3, 7))),
        (Flatten("flatten"), rng.standard_normal((2, 3, 2, 2))),
        (ResidualBlock("rb_id", 3, 3, stride=1, rng=rng),
         rng.standard_normal((2, 3, 4, 4))),
        (ResidualBlock("rb_proj", 2, 4, stride=2, rng=rng),
         rng.standard_normal((2, 2, 6, 6))),
    ]


@pytest.mark.parametrize("case_index", range(15))
def test_layer_input_gradient(case_index):
    rng = np.random.default_rng(500 + case_index)
    layer, x = build_cases(rng)[case_index]
    input_error, param_errors = check_layer_gradients(layer, x, rng)
    assert input_error < TOL, f"{layer.name}: input grad error {input_error}"
    for key, err in param_errors.items():
        assert err < TOL, f"{layer.name}/{key}: param grad error {err}"


def test_residual_block_child_parameter_gradients():
    """ResidualBlock parameters live in child layers; check them too."""
    rng = np.random.default_rng(42)
    block = ResidualBlock("rb", 2, 3, stride=2, rng=rng)
    x = rng.standard_normal((2, 2, 4, 4))
    r = rng.standard_normal(block.forward(x, training=True).shape)

    def objective():
        return float(np.sum(block.forward(x, training=True) * r))

    block.forward(x, training=True)
    block.backward(r.copy())
    from repro.nn import numerical_gradient

    for name, value, grad in block.parameter_items():
        analytic = grad.copy()
        numeric = numerical_gradient(objective, value)
        # Conv biases are exactly cancelled by the following batch norm
        # (mean subtraction), so both gradients are ~0 there and a pure
        # relative comparison would amplify finite-difference noise; use
        # a combined absolute + relative tolerance instead.
        assert np.allclose(analytic, numeric, rtol=1e-4, atol=5e-3), (
            f"{name}: max abs diff {np.abs(analytic - numeric).max()}"
        )


def test_backward_before_forward_raises():
    rng = np.random.default_rng(0)
    layer = Dense("d", 3, 2, rng=rng)
    with pytest.raises(RuntimeError):
        layer.backward(np.zeros((1, 2)))


def test_inference_forward_does_not_cache():
    rng = np.random.default_rng(0)
    layer = ReLU("r")
    layer.forward(rng.standard_normal((2, 3)), training=False)
    with pytest.raises(RuntimeError):
        layer.backward(np.zeros((2, 3)))
