"""Tests for network weight checkpointing."""

import numpy as np
import pytest

from repro.nn import (
    Network,
    alex_cifar10,
    load_network_state_dict,
    load_network_weights,
    network_state_dict,
    save_network,
)
from repro.nn.layers import Dense, ReLU


def small_net(seed=0):
    rng = np.random.default_rng(seed)
    return Network([
        Dense("fc1", 4, 8, rng=rng),
        ReLU("r"),
        Dense("fc2", 8, 2, rng=rng),
    ])


def test_state_dict_names_and_copies():
    net = small_net()
    state = network_state_dict(net)
    assert set(state) == {"fc1/weight", "fc1/bias", "fc2/weight", "fc2/bias"}
    state["fc1/weight"][...] = 0.0
    assert not np.allclose(net.parameters()[0].value, 0.0)


def test_load_state_dict_roundtrip():
    source = small_net(seed=1)
    target = small_net(seed=2)
    load_network_state_dict(target, network_state_dict(source))
    x = np.random.default_rng(0).normal(size=(3, 4))
    assert np.allclose(
        source.forward(x, training=False), target.forward(x, training=False)
    )


def test_strict_mismatch_raises():
    net = small_net()
    state = network_state_dict(net)
    del state["fc2/bias"]
    with pytest.raises(KeyError):
        load_network_state_dict(net, state)
    load_network_state_dict(net, state, strict=False)  # lenient mode works


def test_clean_load_reports_all_loaded():
    net = small_net()
    report = load_network_state_dict(net, network_state_dict(net))
    assert report.clean
    assert set(report.loaded) == {
        "fc1/weight", "fc1/bias", "fc2/weight", "fc2/bias"
    }
    assert report.missing == () and report.unexpected == ()


def test_lenient_load_reports_missing_and_unexpected_keys():
    net = small_net()
    state = network_state_dict(net)
    del state["fc2/bias"]                      # model param not in state
    state["fc9/weight"] = np.zeros((2, 2))     # state entry not on model
    report = load_network_state_dict(net, state, strict=False)
    assert not report.clean
    assert report.missing == ("fc2/bias",)
    assert report.unexpected == ("fc9/weight",)
    assert "fc2/bias" not in report.loaded
    assert len(report.loaded) == 3
    assert "fc9/weight" in str(report)


def test_load_network_weights_returns_report(tmp_path):
    source = small_net(seed=1)
    path = str(tmp_path / "weights.npz")
    save_network(source, path)
    target = small_net(seed=2)
    report = load_network_weights(target, path)
    assert report.clean and len(report.loaded) == 4
    # Lenient load into a different architecture names the gaps.
    wider = Network([Dense("fc1", 4, 8, rng=np.random.default_rng(0)),
                     ReLU("r"),
                     Dense("fc3", 8, 2, rng=np.random.default_rng(0))])
    report = load_network_weights(wider, path, strict=False)
    assert report.missing == ("fc3/bias", "fc3/weight")
    assert report.unexpected == ("fc2/bias", "fc2/weight")


def test_shape_mismatch_raises():
    net = small_net()
    state = network_state_dict(net)
    state["fc1/weight"] = np.zeros((4, 9))
    with pytest.raises(ValueError):
        load_network_state_dict(net, state, strict=False)


def test_file_roundtrip(tmp_path):
    source = alex_cifar10(image_size=8, width_scale=0.25, seed=3)
    path = str(tmp_path / "weights.npz")
    save_network(source, path)
    target = alex_cifar10(image_size=8, width_scale=0.25, seed=99)
    load_network_weights(target, path)
    x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
    assert np.allclose(
        source.forward(x, training=False), target.forward(x, training=False)
    )
