"""Unit tests for the pad-crop/flip augmentation."""

import numpy as np
import pytest

from repro.nn import make_augmenter, pad_crop_flip


def test_output_shape_preserved(rng):
    batch = rng.normal(size=(8, 3, 16, 16)).astype(np.float32)
    out = pad_crop_flip(batch, rng, pad=2)
    assert out.shape == batch.shape
    assert out.dtype == batch.dtype


def test_zero_pad_no_flip_is_identity(rng):
    batch = rng.normal(size=(4, 3, 8, 8))
    out = pad_crop_flip(batch, rng, pad=0, flip_probability=0.0)
    assert np.allclose(out, batch)


def test_certain_flip_reverses_width(rng):
    batch = rng.normal(size=(2, 1, 4, 4))
    out = pad_crop_flip(batch, rng, pad=0, flip_probability=1.0)
    assert np.allclose(out, batch[:, :, :, ::-1])


def test_crops_come_from_padded_image(rng):
    batch = np.ones((64, 1, 4, 4))
    out = pad_crop_flip(batch, rng, pad=2, flip_probability=0.0)
    # Values are 0 (pad) or 1 (original); some crops must include padding.
    assert set(np.unique(out)) <= {0.0, 1.0}
    assert out.mean() < 1.0


def test_pixel_mass_preserved_without_pad(rng):
    batch = rng.normal(size=(8, 3, 8, 8))
    out = pad_crop_flip(batch, rng, pad=0)
    # Without padding, a crop is the whole image (possibly flipped).
    assert np.allclose(np.sort(out.reshape(8, -1)), np.sort(batch.reshape(8, -1)))


def test_validates_input(rng):
    with pytest.raises(ValueError):
        pad_crop_flip(np.zeros((2, 3, 4)), rng)
    with pytest.raises(ValueError):
        pad_crop_flip(np.zeros((2, 3, 4, 4)), rng, pad=-1)


def test_make_augmenter_wraps(rng):
    augment = make_augmenter(pad=1, flip_probability=0.0)
    batch = rng.normal(size=(3, 3, 6, 6))
    out = augment(batch, rng)
    assert out.shape == batch.shape


def test_deterministic_given_rng():
    batch = np.random.default_rng(0).normal(size=(5, 3, 8, 8))
    out1 = pad_crop_flip(batch, np.random.default_rng(7), pad=2)
    out2 = pad_crop_flip(batch, np.random.default_rng(7), pad=2)
    assert np.array_equal(out1, out2)
