"""Tests for the Table VII / Figure 3 experiment harness (fast settings)."""

import numpy as np
import pytest

from repro.experiments import (
    PAPER_TABLE7,
    SmallRunConfig,
    fit_gm_mixture_for_dataset,
    format_table7,
    load_small_dataset,
    run_dataset_comparison,
    run_table7,
)

FAST = SmallRunConfig(n_subsamples=2, cv_folds=2, epochs=40, compact_grids=True)


def test_load_small_dataset_dispatch():
    assert load_small_dataset("Hosp-FA").name == "Hosp-FA"
    assert load_small_dataset("ionosphere").name == "ionosphere"
    with pytest.raises(KeyError):
        load_small_dataset("mnist")


def test_run_dataset_comparison_structure():
    comp = run_dataset_comparison(
        load_small_dataset("hepatitis"), FAST, methods=("l2", "gm")
    )
    assert set(comp.results) == {"l2", "gm"}
    for result in comp.results.values():
        assert len(result.per_subsample) == 2
        assert 0.0 <= result.mean_accuracy <= 1.0
        assert result.stderr >= 0.0
        assert len(result.best_params) == 2
    assert comp.best_method() in ("l2", "gm")


def test_gm_cv_selects_from_gamma_grid():
    comp = run_dataset_comparison(
        load_small_dataset("hepatitis"), FAST, methods=("gm",)
    )
    for params in comp.results["gm"].best_params:
        assert "gamma" in params


def test_run_table7_multiple_datasets():
    comps = run_table7(["hepatitis", "breast-canc-pro"], FAST, methods=("l2",))
    assert [c.dataset for c in comps] == ["hepatitis", "breast-canc-pro"]
    text = format_table7(comps)
    assert "hepatitis" in text and "paper" in text


def test_paper_reference_covers_all_12_datasets():
    assert len(PAPER_TABLE7) == 12
    assert "Hosp-FA" in PAPER_TABLE7
    for row in PAPER_TABLE7.values():
        assert set(row) == {"l1", "l2", "elastic", "huber", "gm"}
        # The paper's headline: GM >= every baseline on every dataset
        # except breast-canc-dia.
    losses = [
        name for name, row in PAPER_TABLE7.items()
        if row["gm"] < max(v for k, v in row.items() if k != "gm")
    ]
    assert losses == ["breast-canc-dia"]


def test_fit_gm_mixture_learns_two_components():
    mixture = fit_gm_mixture_for_dataset("horse-colic", epochs=60)
    assert mixture.pi.size == mixture.lam.size
    assert 1 <= mixture.pi.size <= 2
    if mixture.pi.size == 2:
        assert mixture.crossovers.size >= 1
    assert mixture.grid.size == mixture.density.size
    assert np.all(mixture.density >= 0.0)
    assert mixture.component_densities.shape == (
        mixture.pi.size, mixture.grid.size
    )


def test_mixture_density_is_sum_of_components():
    mixture = fit_gm_mixture_for_dataset("hepatitis", epochs=40)
    assert np.allclose(
        mixture.component_densities.sum(axis=0), mixture.density, rtol=1e-9
    )
