"""Tests for the paper reference constants and text formatting."""

import numpy as np

from repro.experiments import (
    PAPER_FIG3_MIXTURES,
    PAPER_TABLE4_ALEX,
    PAPER_TABLE5_RESNET,
    PAPER_TABLE6,
    PAPER_TABLE8,
    format_mixture_rows,
    format_series,
    format_table,
)


def test_paper_table6_values():
    assert PAPER_TABLE6["alex"] == {"none": 0.777, "l2": 0.822, "gm": 0.830}
    assert PAPER_TABLE6["resnet"]["gm"] == 0.921
    # The paper's ordering: none < l2 < gm on both models.
    for model in ("alex", "resnet"):
        row = PAPER_TABLE6[model]
        assert row["none"] < row["l2"] < row["gm"]


def test_paper_table8_linear_wins():
    for model in ("alex", "resnet"):
        row = PAPER_TABLE8[model]
        assert row["linear"] >= row["proportional"] >= row["identical"]


def test_paper_table4_mixtures_are_two_component():
    for pi, lam in PAPER_TABLE4_ALEX.values():
        assert len(pi) == len(lam) == 2
        assert abs(sum(pi) - 1.0) < 1e-6
        assert lam[0] < lam[1]


def test_paper_table5_layer_names_match_our_resnet():
    from repro.nn import resnet20

    ours = {p.name for p in resnet20(seed=0).parameters()}
    for name in PAPER_TABLE5_RESNET:
        assert name in ours, name


def test_paper_fig3_mixture_constants():
    pi, lam = PAPER_FIG3_MIXTURES["horse-colic"]
    assert pi == [0.326, 0.674]
    assert lam == [1.270, 31.295]


def test_format_table_alignment():
    text = format_table(["col", "x"], [["a", 1], ["bbbb", 22]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[1].startswith("---")


def test_format_mixture_rows_includes_reference():
    rows = [("conv1/weight", [0.2, 0.8], [1.0, 100.0])]
    text = format_mixture_rows(rows, PAPER_TABLE4_ALEX)
    assert "conv1/weight" in text
    assert "835.959" in text


def test_format_series():
    text = format_series("acc", [0.3, 0.5], np.array([0.81, 0.83]))
    assert text == "acc: 0.3:0.810, 0.5:0.830"
