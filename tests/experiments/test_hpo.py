"""Tests for the hyper-parameter-search comparison (Section VI-B)."""

import numpy as np
import pytest

from repro.datasets import TabularEncoder, TabularSchema, generate_dataset
from repro.experiments.hpo import (
    compare_hpo_budgets,
    grid_search_l2,
    random_search_l2,
    train_adaptive_gm,
)


@pytest.fixture(scope="module")
def splits():
    schema = TabularSchema(
        n_continuous=40, predictive_fraction=0.15, class_separation=3.0,
        flip_rate=0.02, noise_std=0.15,
    )
    table, labels, _w = generate_dataset(schema, 600,
                                         np.random.default_rng(5))
    x = TabularEncoder().fit_transform(table)
    return (x[:320], labels[:320], x[320:420], labels[320:420],
            x[420:], labels[420:])


def test_random_search_structure(splits):
    result = random_search_l2(*splits, n_trials=3, epochs=30)
    assert len(result.trials) == 3
    assert result.n_trainings == 4
    assert result.best_strength in {t.strength for t in result.trials}
    assert 0.5 < result.test_accuracy <= 1.0


def test_random_search_picks_best_validation_trial(splits):
    result = random_search_l2(*splits, n_trials=4, epochs=30)
    best_val = max(t.val_accuracy for t in result.trials)
    chosen = next(t for t in result.trials
                  if t.strength == result.best_strength)
    assert chosen.val_accuracy == best_val


def test_grid_search_covers_grid(splits):
    result = grid_search_l2(*splits, grid=(0.1, 10.0), epochs=30)
    assert sorted(t.strength for t in result.trials) == [0.1, 10.0]


def test_adaptive_gm_single_run(splits):
    acc = train_adaptive_gm(*splits, epochs=60)
    assert 0.6 < acc <= 1.0


def test_gm_competitive_with_searched_l2_at_fraction_of_budget(splits):
    comparison = compare_hpo_budgets(*splits, budgets=(4,), epochs=60)
    gm_acc, gm_cost = comparison["gm (adaptive)"]
    rs_acc, rs_cost = comparison["random-search@4"]
    assert gm_cost == 1
    assert rs_cost == 5
    # The paper's pitch: one adaptive run is competitive with a whole
    # search (allowing a small margin for seed noise).
    assert gm_acc >= rs_acc - 0.03


def test_invalid_arguments(splits):
    with pytest.raises(ValueError):
        random_search_l2(*splits, n_trials=0)
    with pytest.raises(ValueError):
        random_search_l2(*splits, strength_range=(1.0, 0.1))
