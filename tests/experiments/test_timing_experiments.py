"""Tests for the lazy-update timing harness (tiny settings)."""

import numpy as np
import pytest

from repro.experiments import (
    DeepRunConfig,
    TimingCurve,
    format_timing_curves,
    run_ig_sweep,
    run_im_sweep,
    run_warmup_sweep,
    speedup_table,
)

TINY = DeepRunConfig(
    model="alex", image_size=8, n_train=60, n_test=40, epochs=3,
    width_scale=0.25, batch_size=10,
)


def test_im_sweep_curves_structure():
    curves = run_im_sweep(TINY, im_values=(1, 10), eager_epochs=1)
    labels = [c.label for c in curves]
    assert labels == ["Im=1", "Im=10", "baseline"]
    for curve in curves:
        assert curve.epochs.size == TINY.epochs
        assert np.all(np.diff(curve.cumulative_seconds) >= 0.0)
        assert curve.total_seconds == pytest.approx(
            curve.cumulative_seconds[-1]
        )


def test_lazy_is_not_slower_than_eager():
    curves = run_im_sweep(TINY, im_values=(1, 50), eager_epochs=0,
                          include_baseline=False)
    eager = next(c for c in curves if c.label == "Im=1")
    lazy = next(c for c in curves if c.label == "Im=50")
    assert lazy.total_seconds <= eager.total_seconds * 1.05


def test_ig_sweep_requires_ig_geq_im():
    with pytest.raises(ValueError):
        run_ig_sweep(TINY, im=50, ig_values=(10,))


def test_ig_sweep_labels():
    curves = run_ig_sweep(TINY, im=5, ig_values=(5, 15), eager_epochs=0)
    assert [c.label for c in curves] == ["Ig=5&Im=5", "Ig=15&Im=5"]


def test_warmup_sweep_structure():
    curves = run_warmup_sweep(TINY, e_values=(1, 2), im=5,
                              include_baseline=False)
    assert [c.label for c in curves] == ["E=1", "E=2"]


def test_speedup_table_normalizes_to_slowest():
    curves = [
        TimingCurve("a", np.array([1]), np.array([2.0]), 2.0, 0.5),
        TimingCurve("b", np.array([1]), np.array([1.0]), 1.0, 0.5),
    ]
    table = speedup_table(curves)
    assert table["a"] == (2.0, 1.0)
    assert table["b"] == (1.0, 2.0)
    with pytest.raises(ValueError):
        speedup_table([])


def test_format_timing_curves_text():
    curves = [TimingCurve("Im=1", np.array([1]), np.array([1.0]), 1.0, 0.9)]
    text = format_timing_curves(curves)
    assert "Im=1" in text and "0.900" in text
