"""Tests for the deep-experiment harness (tiny settings for speed)."""

import numpy as np
import pytest

from repro.core import LazyUpdateSchedule
from repro.experiments import (
    DEFAULT_GAMMA,
    DeepRunConfig,
    alex_bench_config,
    average_by_init,
    build_model,
    layer_mixture_table,
    load_image_data,
    resnet_bench_config,
    run_init_alpha_sweep,
    run_table6,
    train_deep,
)

TINY = DeepRunConfig(
    model="alex", image_size=8, n_train=60, n_test=40, epochs=2,
    width_scale=0.25, batch_size=20,
)


def test_config_validation():
    with pytest.raises(ValueError):
        DeepRunConfig(model="vgg")


def test_effective_defaults():
    assert DeepRunConfig(model="alex").effective_lr == 0.01
    assert DeepRunConfig(model="resnet").effective_lr == 0.05
    assert DeepRunConfig(model="alex").effective_augment is False
    assert DeepRunConfig(model="resnet").effective_augment is True
    assert DeepRunConfig(model="resnet", augment=False).effective_augment is False


def test_bench_configs():
    assert alex_bench_config().model == "alex"
    assert resnet_bench_config().effective_augment is False
    assert alex_bench_config(epochs=3).epochs == 3
    assert set(DEFAULT_GAMMA) == {"alex", "resnet"}


def test_build_model_dispatch():
    assert build_model(TINY).name == "Alex-CIFAR-10"
    resnet = build_model(DeepRunConfig(model="resnet", n_blocks_per_stage=1,
                                       base_width=4))
    assert resnet.name == "ResNet-8"


def test_train_deep_gm_collects_layer_mixtures():
    result = train_deep(TINY, method="gm")
    assert result.method == "gm"
    assert 0.0 <= result.test_accuracy <= 1.0
    assert set(result.layer_mixtures) == {
        "conv1/weight", "conv2/weight", "conv3/weight", "dense/weight"
    }
    for pi, lam in result.layer_mixtures.values():
        assert np.isclose(pi.sum(), 1.0)
        assert np.all(lam > 0)


def test_train_deep_l2_and_none_have_no_mixtures():
    for method in ("none", "l2"):
        result = train_deep(TINY, method=method)
        assert result.layer_mixtures == {}


def test_invalid_method_rejected():
    with pytest.raises(ValueError):
        train_deep(TINY, method="dropout")


def test_run_table6_shares_data():
    results = run_table6(TINY, methods=("none", "gm"))
    assert set(results) == {"none", "gm"}


def test_layer_mixture_table_sorted_small_pi_first():
    result = train_deep(TINY, method="gm")
    rows = layer_mixture_table(result)
    assert [r[0] for r in rows] == sorted(r[0] for r in rows)
    for _name, pi, lam in rows:
        assert lam == sorted(lam)  # ascending precision, like Table IV


def test_init_alpha_sweep_and_table8():
    sweep = run_init_alpha_sweep(
        TINY, init_methods=("linear", "identical"), alpha_exponents=(0.5, 0.9)
    )
    assert len(sweep) == 4
    table8 = average_by_init(sweep)
    assert set(table8) == {"linear", "identical"}
    for value in table8.values():
        assert 0.0 <= value <= 1.0


def test_schedule_passed_to_all_layers():
    sched = LazyUpdateSchedule(model_interval=3, gm_interval=3, eager_epochs=0)
    result = train_deep(TINY, method="gm", schedule=sched)
    # Re-run a model build with the same factory to inspect the attached regs.
    assert result.test_accuracy >= 0.0  # training completed without error


def test_load_image_data_respects_config():
    data = load_image_data(TINY)
    assert data.x_train.shape == (60, 3, 8, 8)
    assert data.x_test.shape == (40, 3, 8, 8)
