"""Tests for the design-choice ablations."""

import numpy as np

from repro.core import GaussianMixture
from repro.experiments.ablations import (
    naive_responsibilities,
    responsibility_stability_comparison,
    run_merge_ablation,
    run_pruning_ablation,
)


def test_pruning_ablation_component_counts(rng):
    counts = run_pruning_ablation(rng)
    assert counts["paper (prune+merge)"] <= 2
    assert counts["ablated (neither)"] == 4


def test_merge_ablation_detects_duplicates(rng):
    results = run_merge_ablation(rng)
    n_on, _gap_on = results["merge on"]
    n_off, gap_off = results["merge off"]
    assert n_on <= n_off
    if n_off > n_on:
        # The unmerged variant carries near-duplicate precisions.
        assert gap_off < 0.05


def test_naive_matches_logspace_in_benign_regime(rng):
    mixture = GaussianMixture(pi=np.array([0.3, 0.7]), lam=np.array([1.0, 50.0]))
    w = rng.normal(0, 0.3, 100)
    naive = naive_responsibilities(mixture, w)
    stable = mixture.responsibilities(w)
    assert np.allclose(naive, stable, atol=1e-12)


def test_logspace_survives_extreme_precisions():
    comparison = responsibility_stability_comparison(precision_scale=1e8)
    assert comparison["logspace_bad_rows"] == 0.0
    assert comparison["naive_bad_rows"] > 0.0
