"""Unit tests for the regularizer factory and CV grids."""

import pytest

from repro.core import (
    ElasticNetRegularizer,
    GMRegularizer,
    HuberRegularizer,
    L1Regularizer,
    L2Regularizer,
)
from repro.experiments import METHODS, default_grid, make_regularizer


def test_method_names():
    assert METHODS == ("none", "l1", "l2", "elastic", "huber", "gm")


def test_none_returns_none():
    assert make_regularizer("none", 10) is None


@pytest.mark.parametrize("method,cls", [
    ("l1", L1Regularizer),
    ("l2", L2Regularizer),
    ("elastic", ElasticNetRegularizer),
    ("huber", HuberRegularizer),
    ("gm", GMRegularizer),
])
def test_factory_types(method, cls):
    reg = make_regularizer(method, 10, params={"strength": 2.0, "gamma": 0.01})
    assert isinstance(reg, cls)


def test_gm_params_forwarded():
    reg = make_regularizer(
        "gm", 100,
        params={"gamma": 0.01, "alpha_exponent": 0.3, "n_components": 3,
                "init_method": "proportional"},
    )
    assert isinstance(reg, GMRegularizer)
    assert reg.hyperparams.gamma == 0.01
    assert reg.hyperparams.alpha_exponent == 0.3
    assert reg.mixture.n_components == 3
    assert reg.init_method == "proportional"


def test_unknown_method_rejected():
    with pytest.raises(ValueError):
        make_regularizer("dropout", 10)
    with pytest.raises(ValueError):
        default_grid("dropout")


def test_gm_grid_is_paper_gamma_grid():
    grid = default_grid("gm")
    assert [g["gamma"] for g in grid] == [
        0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05
    ]


def test_compact_grids_are_smaller():
    for method in ("l1", "l2", "elastic", "huber", "gm"):
        assert len(default_grid(method, compact=True)) < len(default_grid(method))


def test_none_grid_single_entry():
    assert default_grid("none") == [{}]


def test_elastic_grid_covers_ratios():
    ratios = {g["l1_ratio"] for g in default_grid("elastic")}
    assert ratios == {0.15, 0.5, 0.85}
