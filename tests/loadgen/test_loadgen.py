"""Load generator: deterministic schedules, faithful replay, chaos drill."""

import numpy as np
import pytest

from repro.linear.logistic import LogisticRegression
from repro.loadgen import (
    LoadGenerator,
    TrafficMix,
    build_schedule,
)
from repro.serve import ModelServer
from repro.serve.sharding import ShardedModelServer

D = 12


@pytest.fixture
def model():
    return LogisticRegression(D, rng=np.random.default_rng(0))


@pytest.fixture
def rows():
    return np.random.default_rng(1).normal(size=(64, D))


# ----------------------------------------------------------------------
# Schedule determinism
# ----------------------------------------------------------------------
def test_same_seed_same_schedule():
    mix = TrafficMix.heavy_tail()
    a = build_schedule(mix, 400, 64, seed=5)
    b = build_schedule(mix, 400, 64, seed=5)
    assert a == b


def test_different_seed_different_schedule():
    mix = TrafficMix.heavy_tail()
    assert build_schedule(mix, 400, 64, seed=5) != build_schedule(
        mix, 400, 64, seed=6
    )


def test_burst_structure():
    mix = TrafficMix(
        name="bursty", mean_gap=0.01, burst_every=10, burst_size=3
    )
    schedule = build_schedule(mix, 100, 16, seed=1)
    for start in range(10, 100, 10):
        for offset in range(3):
            assert schedule[start + offset].gap == 0.0


def test_hot_keys_concentrate():
    mix = TrafficMix(name="hot", hot_fraction=0.9, hot_pool=2)
    schedule = build_schedule(mix, 1000, 64, seed=2)
    hot = sum(1 for request in schedule if request.row_id < 2)
    assert hot > 800


def test_slow_clients_marked():
    mix = TrafficMix(name="slow", slow_fraction=0.5, slow_delay=0.001)
    schedule = build_schedule(mix, 400, 16, seed=3)
    slow = sum(1 for request in schedule if request.slow)
    assert 100 < slow < 300


def test_mix_validation():
    with pytest.raises(ValueError):
        TrafficMix(methods=())
    with pytest.raises(ValueError):
        TrafficMix(hot_fraction=1.5)
    with pytest.raises(ValueError):
        build_schedule(TrafficMix(), 0, 4)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def test_replay_answers_every_request(model, rows):
    schedule = build_schedule(TrafficMix.closed_loop(), 200, 64, seed=7)
    with ModelServer(model=model) as server:
        report = LoadGenerator(
            server, schedule, rows, workers=4, mix_name="closed_loop"
        ).run()
    assert report.n_requests == 200
    assert report.errors == 0
    assert report.qps > 0
    # Single-process server: everything attributes to shard 0.
    assert [s.shard for s in report.shards] == [0]
    assert report.shards[0].requests == 200


def test_replay_shard_attribution_is_deterministic(model, rows):
    schedule = build_schedule(TrafficMix.heavy_tail(), 150, 64, seed=8)
    with ShardedModelServer(
        model=model, n_shards=2, monitor_interval=0.02
    ) as server:
        r1 = LoadGenerator(server, schedule, rows, workers=4).run()
        r2 = LoadGenerator(server, schedule, rows, workers=4).run()
    shards1 = {o.index: o.shard for o in r1.outcomes}
    shards2 = {o.index: o.shard for o in r2.outcomes}
    assert shards1 == shards2  # same schedule -> same intended placement
    assert sum(s.requests for s in r1.shards) == 150


def test_kill_shard_drill_drops_nothing(model, rows):
    schedule = build_schedule(TrafficMix.closed_loop(), 300, 64, seed=9)
    with ShardedModelServer(
        model=model, n_shards=2, monitor_interval=0.02
    ) as server:
        report = LoadGenerator(
            server, schedule, rows, workers=4,
            kill_shard_at=(150, 1),
        ).run()
        respawns = sum(h.respawns for h in server.supervisor.handles)
    assert report.n_requests == 300
    assert report.errors == 0
    assert respawns >= 1


def test_format_table_and_to_dict(model, rows):
    schedule = build_schedule(TrafficMix.closed_loop(), 50, 16, seed=10)
    with ModelServer(model=model) as server:
        report = LoadGenerator(server, schedule, rows, workers=2).run()
    table = report.format_table()
    assert "shard" in table and "p99_ms" in table and "all" in table
    payload = report.to_dict()
    assert payload["n_requests"] == 50
    assert payload["shards"][0]["requests"] == 50


def test_generator_validation(model, rows):
    with pytest.raises(ValueError):
        LoadGenerator(object(), [], rows)
