"""Load-generator tests run under the runtime lock-order sanitizer.

See ``tests/serve/conftest.py`` for the rationale; the load generator
drives the whole serving stack from many worker threads at once, which
is exactly the traffic shape that exposes acquisition-order bugs.
"""

import pytest

from repro.tools.analyze import lockcheck


@pytest.fixture(autouse=True)
def lock_order_sanitizer():
    tracker = lockcheck.LockOrderTracker(raise_on_inversion=False)
    with lockcheck.installed(tracker=tracker):
        yield tracker
    assert not tracker.inversions, "\n".join(
        inversion.describe() for inversion in tracker.inversions
    )
