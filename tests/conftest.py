"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A fresh, deterministically seeded generator per test."""
    return np.random.default_rng(12345)
