"""Seeded-RNG plumbing: deterministic yet distinct generator streams."""

import numpy as np

from repro.rng import (
    REPRO_DEFAULT_SEED,
    default_generator,
    set_default_seed,
    spawn,
)


def test_default_seed_is_paper_year():
    assert REPRO_DEFAULT_SEED == 2018


def test_explicit_seed_is_plain_default_rng():
    a = default_generator(123).standard_normal(5)
    b = np.random.default_rng(123).standard_normal(5)
    np.testing.assert_array_equal(a, b)


def test_unseeded_calls_draw_distinct_streams():
    a = default_generator().standard_normal(8)
    b = default_generator().standard_normal(8)
    assert not np.array_equal(a, b)


def test_set_default_seed_resets_the_stream():
    previous = set_default_seed(77)
    try:
        first = default_generator().standard_normal(6)
        set_default_seed(77)
        replay = default_generator().standard_normal(6)
        np.testing.assert_array_equal(first, replay)
    finally:
        set_default_seed(previous)


def test_spawn_is_deterministic_and_key_sensitive():
    a = spawn(5, 3, 0).standard_normal(4)
    again = spawn(5, 3, 0).standard_normal(4)
    other_key = spawn(5, 3, 1).standard_normal(4)
    other_seed = spawn(6, 3, 0).standard_normal(4)
    np.testing.assert_array_equal(a, again)
    assert not np.array_equal(a, other_key)
    assert not np.array_equal(a, other_seed)


def test_spawn_does_not_collide_like_seed_offsets():
    # spawn(7, 1) and spawn(8, 0) would collide under naive seed+k.
    a = spawn(7, 1).standard_normal(4)
    b = spawn(8, 0).standard_normal(4)
    assert not np.array_equal(a, b)
