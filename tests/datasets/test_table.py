"""Unit tests for the typed column-store Table."""

import numpy as np
import pytest

from repro.datasets import Column, ColumnType, Table


@pytest.fixture
def table():
    return Table([
        Column("age", ColumnType.CONTINUOUS, np.array([30.0, 40.0, np.nan, 55.0])),
        Column("sex", ColumnType.CATEGORICAL,
               np.array(["m", "f", None, "f"], dtype=object)),
    ])


def test_basic_introspection(table):
    assert table.n_rows == 4
    assert table.n_columns == 2
    assert table.column_names == ["age", "sex"]
    assert "age" in table and "weight" not in table


def test_missing_masks(table):
    assert table.column("age").n_missing() == 1
    assert table.column("sex").n_missing() == 1
    assert table.column("age").missing_mask().tolist() == [False, False, True, False]


def test_categories_sorted_excludes_missing(table):
    assert table.column("sex").categories() == ["f", "m"]


def test_categories_on_continuous_rejected(table):
    with pytest.raises(TypeError):
        table.column("age").categories()


def test_take_and_head(table):
    sub = table.take(np.array([3, 0]))
    assert sub.column("age").values.tolist() == [55.0, 30.0]
    assert table.head(2).n_rows == 2
    assert table.head(100).n_rows == 4


def test_take_returns_copies(table):
    sub = table.take(np.array([0, 1]))
    sub.column("age").values[0] = -1.0
    assert table.column("age").values[0] == 30.0


def test_select_projection(table):
    sub = table.select(["sex"])
    assert sub.column_names == ["sex"]


def test_filter_by_predicate(table):
    adults = table.filter(lambda row: row["sex"] == "f")
    assert adults.n_rows == 2


def test_with_column_appends_and_replaces(table):
    extra = Column("bmi", ColumnType.CONTINUOUS, np.arange(4.0))
    bigger = table.with_column(extra)
    assert bigger.n_columns == 3
    replaced = bigger.with_column(
        Column("bmi", ColumnType.CONTINUOUS, np.zeros(4))
    )
    assert replaced.n_columns == 3
    assert np.allclose(replaced.column("bmi").values, 0.0)


def test_with_column_length_mismatch_rejected(table):
    with pytest.raises(ValueError):
        table.with_column(Column("x", ColumnType.CONTINUOUS, np.zeros(3)))


def test_without_columns(table):
    assert table.without_columns(["sex"]).column_names == ["age"]


def test_iter_rows_and_row(table):
    rows = list(table.iter_rows())
    assert rows[0] == {"age": 30.0, "sex": "m"}
    assert table.row(1)["sex"] == "f"
    with pytest.raises(IndexError):
        table.row(4)


def test_duplicate_column_names_rejected():
    col = Column("x", ColumnType.CONTINUOUS, np.zeros(2))
    with pytest.raises(ValueError):
        Table([col, col])


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        Table([
            Column("a", ColumnType.CONTINUOUS, np.zeros(2)),
            Column("b", ColumnType.CONTINUOUS, np.zeros(3)),
        ])


def test_empty_table_rejected():
    with pytest.raises(ValueError):
        Table([])


def test_from_dict_type_inference():
    t = Table.from_dict({"num": [1.0, 2.0], "cat": ["a", "b"]})
    assert t.column("num").is_continuous
    assert t.column("cat").is_categorical


def test_equals_with_nan(table):
    clone = table.take(np.arange(4))
    assert table.equals(clone)
    other = table.with_column(
        Column("age", ColumnType.CONTINUOUS, np.array([1.0, 2.0, 3.0, 4.0]))
    )
    assert not table.equals(other)


def test_unknown_column_type_rejected():
    with pytest.raises(ValueError):
        Column("x", "ordinal", np.zeros(2))
