"""Unit tests for the paper's preprocessing protocol (Section V-A)."""

import numpy as np
import pytest

from repro.datasets import Column, ColumnType, Table, TabularEncoder, one_hot
from repro.datasets.preprocessing import MISSING_CATEGORY, encode_label_column


def make_table(ages, colors):
    return Table([
        Column("age", ColumnType.CONTINUOUS, np.asarray(ages, dtype=np.float64)),
        Column("color", ColumnType.CATEGORICAL,
               np.asarray(colors, dtype=object)),
    ])


def test_one_hot_basic():
    out = one_hot(np.array(["a", "b", "a"], dtype=object), ["a", "b"])
    assert np.allclose(out, [[1, 0], [0, 1], [1, 0]])


def test_one_hot_unknown_maps_to_zero_row():
    out = one_hot(np.array(["c"], dtype=object), ["a", "b"])
    assert np.allclose(out, [[0, 0]])


def test_continuous_standardized_to_unit_variance():
    table = make_table([1.0, 2.0, 3.0, 4.0], ["a"] * 4)
    enc = TabularEncoder()
    x = enc.fit_transform(table)
    assert np.isclose(x[:, 0].mean(), 0.0)
    assert np.isclose(x[:, 0].std(), 1.0)


def test_missing_continuous_mean_imputed():
    table = make_table([1.0, np.nan, 3.0], ["a"] * 3)
    enc = TabularEncoder()
    x = enc.fit_transform(table)
    # Imputed to the mean -> standardized value 0.
    assert np.isclose(x[1, 0], 0.0)


def test_missing_categorical_gets_separate_class():
    table = make_table([1.0, 2.0, 3.0], ["a", None, "b"])
    enc = TabularEncoder()
    x = enc.fit_transform(table)
    assert f"color={MISSING_CATEGORY}" in enc.feature_names
    missing_col = enc.feature_names.index(f"color={MISSING_CATEGORY}")
    assert x[1, missing_col] == 1.0


def test_no_missing_no_extra_class():
    table = make_table([1.0, 2.0], ["a", "b"])
    enc = TabularEncoder()
    enc.fit(table)
    assert f"color={MISSING_CATEGORY}" not in enc.feature_names
    assert enc.n_features == 3  # age + 2 one-hot


def test_statistics_frozen_at_fit_time():
    train = make_table([0.0, 2.0], ["a", "b"])
    test = make_table([4.0, 4.0], ["a", "a"])
    enc = TabularEncoder()
    enc.fit(train)
    x = enc.transform(test)
    # Standardized with the TRAIN mean 1 and std 1: (4 - 1) / 1 = 3.
    assert np.allclose(x[:, 0], 3.0)


def test_unseen_test_category_is_all_zeros():
    train = make_table([0.0, 1.0], ["a", "b"])
    test = make_table([0.0], ["z"])
    enc = TabularEncoder()
    enc.fit(train)
    x = enc.transform(test)
    assert np.allclose(x[0, 1:], 0.0)


def test_transform_before_fit_rejected():
    enc = TabularEncoder()
    with pytest.raises(RuntimeError):
        enc.transform(make_table([1.0], ["a"]))
    with pytest.raises(RuntimeError):
        enc.n_features


def test_feature_names_align_with_columns():
    table = make_table([1.0, 2.0], ["a", "b"])
    enc = TabularEncoder()
    x = enc.fit_transform(table)
    assert len(enc.feature_names) == x.shape[1]
    assert enc.feature_names[0] == "age"
    assert enc.feature_names[1:] == ["color=a", "color=b"]


def test_encode_label_column_binary_categorical():
    col = Column("y", ColumnType.CATEGORICAL,
                 np.asarray(["no", "yes", "no"], dtype=object))
    assert encode_label_column(col).tolist() == [0, 1, 0]


def test_encode_label_column_rejects_multiclass():
    col = Column("y", ColumnType.CATEGORICAL,
                 np.asarray(["a", "b", "c"], dtype=object))
    with pytest.raises(ValueError):
        encode_label_column(col)
