"""Unit tests for the class-conditional synthetic data generator."""

import numpy as np
import pytest

from repro.datasets import (
    CategoricalSpec,
    TabularEncoder,
    TabularSchema,
    generate_dataset,
)


def basic_schema(**kwargs):
    defaults = dict(
        n_continuous=10,
        categorical=(CategoricalSpec("c0", 3), CategoricalSpec("c1", 4)),
        predictive_fraction=0.3,
        class_separation=3.0,
        flip_rate=0.0,
    )
    defaults.update(kwargs)
    return TabularSchema(**defaults)


def test_shapes_and_encoded_width(rng):
    schema = basic_schema()
    table, labels, weights = generate_dataset(schema, 200, rng)
    assert table.n_rows == 200
    assert labels.shape == (200,)
    assert schema.n_encoded_features == 10 + 3 + 4
    assert weights.shape == (17,)


def test_labels_are_binary_and_roughly_balanced(rng):
    _t, labels, _w = generate_dataset(basic_schema(), 1000, rng)
    assert set(np.unique(labels)) <= {0, 1}
    assert 0.4 < labels.mean() < 0.6


def test_class_balance_respected(rng):
    schema = basic_schema(class_balance=0.8)
    _t, labels, _w = generate_dataset(schema, 2000, rng)
    assert abs(labels.mean() - 0.8) < 0.04


def test_determinism_per_seed():
    schema = basic_schema()
    t1, y1, w1 = generate_dataset(schema, 100, np.random.default_rng(3))
    t2, y2, w2 = generate_dataset(schema, 100, np.random.default_rng(3))
    assert t1.equals(t2)
    assert np.array_equal(y1, y2)
    assert np.array_equal(w1, w2)


def test_missing_rates_injected(rng):
    schema = basic_schema(
        missing_continuous_rate=0.2, missing_categorical_rate=0.1
    )
    table, _y, _w = generate_dataset(schema, 2000, rng)
    cont_missing = np.mean([
        c.n_missing() / 2000 for c in table.columns() if c.is_continuous
    ])
    cat_missing = np.mean([
        c.n_missing() / 2000 for c in table.columns() if c.is_categorical
    ])
    assert abs(cont_missing - 0.2) < 0.05
    assert abs(cat_missing - 0.1) < 0.05


def test_zero_separation_gives_chance_level(rng):
    schema = basic_schema(class_separation=0.0)
    table, labels, weights = generate_dataset(schema, 3000, rng)
    encoded = TabularEncoder().fit_transform(table)
    # The Bayes weights should be ~0 -> the discriminant is uninformative.
    scores = encoded @ weights
    preds = (scores > np.median(scores)).astype(int)
    assert abs(np.mean(preds == labels) - 0.5) < 0.05


def test_bayes_weights_separate_classes(rng):
    schema = basic_schema(class_separation=4.0)
    table, labels, weights = generate_dataset(schema, 2000, rng)
    encoded = TabularEncoder().fit_transform(table)
    scores = encoded @ weights
    preds = (scores > np.quantile(scores, 1 - labels.mean())).astype(int)
    assert np.mean(preds == labels) > 0.9


def test_flip_rate_bounds_bayes_accuracy(rng):
    schema = basic_schema(class_separation=8.0, flip_rate=0.2)
    table, labels, weights = generate_dataset(schema, 4000, rng)
    encoded = TabularEncoder().fit_transform(table)
    scores = encoded @ weights
    preds = (scores > np.quantile(scores, 0.5)).astype(int)
    acc = np.mean(preds == labels)
    assert 0.7 < acc < 0.86  # ~1 - flip_rate


def test_predictive_fraction_limits_signal_support(rng):
    schema = TabularSchema(
        n_continuous=20, predictive_fraction=0.1, class_separation=3.0,
        noise_std=0.1,
    )
    _t, _y, weights = generate_dataset(schema, 100, rng)
    # Only ~2 continuous weights carry the bulk of the signal; the rest
    # are small-but-nonzero (the paper's "noisy features").
    strong = np.sum(np.abs(weights) > 0.5 * np.abs(weights).max())
    assert strong <= 4
    weak = np.abs(weights) <= 0.5 * np.abs(weights).max()
    assert np.all(np.abs(weights[weak]) > 0.0)  # nonzero, not exactly zero


def test_schema_validation():
    with pytest.raises(ValueError):
        TabularSchema()  # no features at all
    with pytest.raises(ValueError):
        basic_schema(flip_rate=0.6)
    with pytest.raises(ValueError):
        basic_schema(class_separation=-1.0)
    with pytest.raises(ValueError):
        basic_schema(missing_continuous_rate=1.0)
    with pytest.raises(ValueError):
        basic_schema(class_balance=0.0)
    with pytest.raises(ValueError):
        basic_schema(category_concentration=0.0)
    with pytest.raises(ValueError):
        CategoricalSpec("x", 1)


def test_generate_dataset_rejects_zero_samples(rng):
    with pytest.raises(ValueError):
        generate_dataset(basic_schema(), 0, rng)
