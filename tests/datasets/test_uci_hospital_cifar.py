"""Tests for the dataset stand-ins: UCI specs, Hosp-FA, synthetic CIFAR."""

import numpy as np
import pytest

from repro.datasets import (
    HOSP_FA_FEATURES,
    HOSP_FA_SAMPLES,
    UCI_SPECS,
    make_cifar_like,
    make_hospital_dataset,
    make_raw_hospital_table,
    make_uci_dataset,
    uci_dataset_names,
)

# Published Table II characteristics: (n_samples, n_features, feature_type).
TABLE2 = {
    "breast-canc": (699, 81, "categorical"),
    "breast-canc-dia": (569, 30, "continuous"),
    "breast-canc-pro": (198, 33, "continuous"),
    "climate-model": (540, 18, "continuous"),
    "congress-voting": (435, 32, "categorical"),
    "conn-sonar": (208, 60, "continuous"),
    "credit-approval": (690, 42, "combined"),
    "cylindar-bands": (541, 93, "combined"),
    "hepatitis": (155, 34, "combined"),
    "horse-colic": (368, 58, "combined"),
    "ionosphere": (351, 33, "combined"),
}


def test_eleven_datasets_in_alphabetical_order():
    names = uci_dataset_names()
    assert len(names) == 11
    # Hosp-FA aside, the paper picks the first 11 in alphabetical order.
    assert names == sorted(names)


@pytest.mark.parametrize("name", list(TABLE2))
def test_table2_characteristics_match(name):
    n_samples, n_features, ftype = TABLE2[name]
    dataset = make_uci_dataset(name, seed=0)
    assert dataset.n_samples == n_samples
    assert dataset.encoded_dim() == n_features
    assert dataset.feature_type == ftype


def test_combined_datasets_have_missing_values():
    for name in ("credit-approval", "horse-colic", "hepatitis"):
        dataset = make_uci_dataset(name, seed=0)
        total_missing = sum(c.n_missing() for c in dataset.table.columns())
        assert total_missing > 0, name


def test_unknown_dataset_rejected():
    with pytest.raises(KeyError):
        make_uci_dataset("iris")


def test_datasets_deterministic_and_seed_sensitive():
    a = make_uci_dataset("conn-sonar", seed=0)
    b = make_uci_dataset("conn-sonar", seed=0)
    c = make_uci_dataset("conn-sonar", seed=1)
    assert a.table.equals(b.table)
    assert np.array_equal(a.labels, b.labels)
    assert not np.array_equal(a.labels, c.labels)


def test_different_datasets_same_seed_are_independent():
    a = make_uci_dataset("breast-canc-dia", seed=0)
    b = make_uci_dataset("breast-canc-pro", seed=0)
    assert not np.array_equal(a.labels[:100], b.labels[:100])


def test_specs_record_paper_gm_accuracy():
    for spec in UCI_SPECS.values():
        assert 0.7 < spec.paper_gm_accuracy < 1.0


def test_stratified_split_protocol():
    dataset = make_uci_dataset("horse-colic", seed=0)
    split = dataset.stratified_split(seed=3)
    n = dataset.n_samples
    assert split.x_train.shape[0] + split.x_test.shape[0] == n
    assert abs(split.x_test.shape[0] / n - 0.2) < 0.03
    assert split.x_train.shape[1] == split.x_test.shape[1]
    # Class balance preserved.
    assert abs(split.y_train.mean() - split.y_test.mean()) < 0.1


def test_hospital_dataset_shape():
    dataset = make_hospital_dataset(seed=0)
    assert dataset.n_samples == HOSP_FA_SAMPLES == 1755
    assert dataset.encoded_dim() == HOSP_FA_FEATURES == 375
    assert dataset.name == "Hosp-FA"


def test_raw_hospital_table_has_injected_problems():
    raw, labels = make_raw_hospital_table(
        seed=0, duplicate_fraction=0.05, outlier_fraction=0.02
    )
    assert labels.shape == (HOSP_FA_SAMPLES,)
    expected_dups = int(round(0.05 * HOSP_FA_SAMPLES))
    assert raw.n_rows == HOSP_FA_SAMPLES + expected_dups
    assert "patient_id" in raw
    # Outliers present in continuous columns.
    n_outliers = sum(
        int((c.values == -9999.0).sum())
        for c in raw.columns() if c.is_continuous
    )
    assert n_outliers > 0


def test_raw_hospital_duplicates_share_patient_ids():
    raw, labels = make_raw_hospital_table(seed=0, duplicate_fraction=0.03)
    ids = raw.column("patient_id").values
    n = labels.size
    assert set(ids[n:]) <= set(ids[:n])


def test_cifar_like_shapes_and_layout():
    data = make_cifar_like(n_train=50, n_test=20, image_size=16, seed=0)
    assert data.x_train.shape == (50, 3, 16, 16)
    assert data.x_test.shape == (20, 3, 16, 16)
    assert data.image_shape == (3, 16, 16)
    assert data.n_classes == 10


def test_cifar_like_labels_balanced():
    data = make_cifar_like(n_train=200, n_test=100, image_size=8, seed=1)
    counts = np.bincount(data.y_train, minlength=10)
    assert counts.min() == 20


def test_cifar_like_per_pixel_mean_subtracted():
    data = make_cifar_like(n_train=300, n_test=50, image_size=8, seed=2)
    assert np.abs(data.x_train.mean(axis=0)).max() < 1e-4


def test_cifar_like_deterministic():
    a = make_cifar_like(n_train=20, n_test=10, image_size=8, seed=5)
    b = make_cifar_like(n_train=20, n_test=10, image_size=8, seed=5)
    assert np.array_equal(a.x_train, b.x_train)
    assert np.array_equal(a.y_test, b.y_test)


def test_cifar_like_classes_are_separable():
    # Nearest-class-mean classification must beat chance comfortably,
    # otherwise the CNN experiments have no signal to learn.
    data = make_cifar_like(n_train=500, n_test=200, image_size=8,
                           noise=0.5, seed=0)
    means = np.stack([
        data.x_train[data.y_train == c].mean(axis=0) for c in range(10)
    ]).reshape(10, -1)
    flat = data.x_test.reshape(len(data.y_test), -1)
    preds = np.argmin(
        ((flat[:, None, :] - means[None, :, :]) ** 2).sum(axis=2), axis=1
    )
    assert np.mean(preds == data.y_test) > 0.5


def test_cifar_like_validation():
    with pytest.raises(ValueError):
        make_cifar_like(n_train=0)
    with pytest.raises(ValueError):
        make_cifar_like(image_size=2)
    with pytest.raises(ValueError):
        make_cifar_like(n_classes=1)
