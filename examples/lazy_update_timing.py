"""Lazy-update speedup demo (Figures 5-7 at example scale).

Trains the same GM-regularized CNN with increasingly lazy EM schedules
and prints the wall-clock time and accuracy of each, showing that the
lazy update algorithm cuts the regularizer overhead with no accuracy
loss — the paper's Section V-F result.

Run with:  python examples/lazy_update_timing.py   (~2 minutes)
"""

from repro.experiments import (
    format_timing_curves,
    run_im_sweep,
    timing_bench_config,
)


def main() -> None:
    config = timing_bench_config(epochs=8)
    print(f"sweeping the lazy-update interval Im on {config.model} "
          f"({config.epochs} epochs)...\n")
    curves = run_im_sweep(config, im_values=(1, 5, 20, 50), eager_epochs=2)
    print(format_timing_curves(curves))
    eager = next(c for c in curves if c.label == "Im=1")
    laziest = next(c for c in curves if c.label == "Im=50")
    print(
        f"\nIm=50 runs {eager.total_seconds / laziest.total_seconds:.2f}x "
        f"faster than the eager Im=1 "
        f"(accuracy {laziest.test_accuracy:.3f} vs {eager.test_accuracy:.3f})."
    )


if __name__ == "__main__":
    main()
