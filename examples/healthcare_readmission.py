"""End-to-end healthcare analytics: the GEMINI pipeline with GM reg.

Reproduces the paper's Figure 1 story on the synthetic Hosp-FA data:

1. dirty inpatient records are committed to the immutable store
   (Forkbase stage);
2. the cleaning rules remove duplicate admissions and impossible lab
   values (DICE stage);
3. the data is profiled and cohort readmission rates are compared
   across age bands (epiC + CohAna stages);
4. a logistic readmission model is trained with the adaptive GM
   regularization tool plugged into the training loop.

Run with:  python examples/healthcare_readmission.py
"""

import numpy as np

from repro.core import GMRegularizer, make_recommended_regularizer, recommend
from repro.datasets import HOSP_FA_SAMPLES, make_raw_hospital_table
from repro.pipeline import (
    AnalyticsStack,
    DataCleaner,
    DeduplicateRows,
    RangeRule,
    build_cohorts,
    compare_outcome,
    render_cohorts,
)


def main() -> None:
    raw, labels = make_raw_hospital_table(seed=0)
    print(f"raw table: {raw.n_rows} rows x {raw.n_columns} columns "
          f"(labels for {labels.size} unique admissions)\n")

    continuous_columns = [c.name for c in raw.columns() if c.is_continuous]
    cleaner = DataCleaner([
        DeduplicateRows(key="patient_id"),
        RangeRule(continuous_columns, low=-50.0, high=50.0),
    ])
    # The paper's "guidance on setting the hyper-parameters": derive the
    # GM settings from the data shape instead of hand-tuning them.
    n_train = int(round(0.8 * HOSP_FA_SAMPLES))
    print(recommend(375, n_train).rationale, "\n")
    stack = AnalyticsStack(
        cleaner,
        regularizer_factory=lambda m: make_recommended_regularizer(m, n_train),
        lr=0.5,
        epochs=120,
    )
    result = stack.run(raw, labels, seed=0, drop_columns=["patient_id"])

    print(result.cleaning_report.summary())
    print(f"\nimmutable store commits: "
          f"{ {k: v[:10] for k, v in result.commits.items()} }")
    print(f"\nreadmission model test accuracy: {result.test_accuracy:.3f}")

    # Cohort analysis: readmission rate per age band (CohAna stage).
    clean_prefix = raw.head(labels.size)
    cohorts = build_cohorts(clean_prefix, "age_band")
    print()
    print(render_cohorts(compare_outcome(cohorts, labels),
                         title="30-day readmission rate by age band"))

    # The regularizer's learned mixture, for interpretability.
    regularizer = result.model.regularizer
    if isinstance(regularizer, GMRegularizer):
        print(f"\nlearned GM over model weights: "
              f"pi={np.round(regularizer.pi, 3)} "
              f"lambda={np.round(regularizer.lam, 3)}")


if __name__ == "__main__":
    main()
