"""Deep learning with per-layer adaptive GM regularization (Table IV/VI demo).

Trains the Alex-CIFAR-10 architecture of the paper's Table III on the
synthetic CIFAR substitute under no regularization, expert-tuned L2 and
the adaptive GM tool, then prints the per-layer mixtures the GM learned
— the laptop-scale analogue of the paper's Tables IV and VI.

Run with:  python examples/image_classification.py   (~1-2 minutes)
"""

from repro.experiments import (
    alex_bench_config,
    format_mixture_rows,
    format_table6,
    layer_mixture_table,
    run_table6,
    PAPER_TABLE4_ALEX,
)


def main() -> None:
    config = alex_bench_config(epochs=15)  # slightly shorter than the bench
    print(f"training Alex-CIFAR-10 at bench scale: {config}\n")
    results = run_table6(config)

    print("=== Table VI (accuracy under each regularization mode) ===")
    print(format_table6(results, "alex"))

    print("\n=== Table IV (learned per-layer Gaussian mixtures) ===")
    rows = layer_mixture_table(results["gm"])
    print(format_mixture_rows(rows, PAPER_TABLE4_ALEX))
    print(
        "\nEach layer learned its own mixture from the same hyper-parameter "
        "rule,\nwith a dominant high-precision component (noisy weights) and "
        "a minority\nlow-precision one (informative weights) — the paper's "
        "qualitative result."
    )


if __name__ == "__main__":
    main()
