"""Compare all five regularizers on UCI-style datasets (Table VII demo).

Runs the paper's Table VII protocol — stratified subsamples, per-method
cross-validated hyper-parameters, mean +- stderr accuracy — on two of
the UCI stand-ins, with reduced grids so it finishes in about a minute.
The full-protocol run lives in benchmarks/bench_table7_small_datasets.py.

Run with:  python examples/uci_comparison.py
"""

from repro.experiments import (
    SmallRunConfig,
    format_table7,
    load_small_dataset,
    run_dataset_comparison,
)


def main() -> None:
    config = SmallRunConfig(n_subsamples=3, compact_grids=True, epochs=100)
    comparisons = []
    for name in ("horse-colic", "conn-sonar"):
        dataset = load_small_dataset(name)
        print(f"running {name} ({dataset.n_samples} samples, "
              f"{dataset.encoded_dim()} encoded features)...")
        comparisons.append(run_dataset_comparison(dataset, config))
    print()
    print(format_table7(comparisons))
    for comp in comparisons:
        print(f"\nbest method on {comp.dataset}: {comp.best_method()}")


if __name__ == "__main__":
    main()
