"""Quickstart: adaptive GM regularization on logistic regression.

Builds a synthetic binary classification task with the structure the
paper targets — a few predictive features, many noisy ones — and trains
logistic regression under no regularization, tuned L2, and the adaptive
GM regularizer.  Prints the accuracy of each and the Gaussian Mixture
the GM tool learned.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import GMRegularizer, L2Regularizer
from repro.datasets import TabularSchema, generate_dataset
from repro.datasets.preprocessing import TabularEncoder
from repro.linear import LogisticRegression, accuracy
from repro.optim import Trainer


def main() -> None:
    # A dataset with 8 predictive continuous features out of 80.
    schema = TabularSchema(
        n_continuous=80, predictive_fraction=0.1, class_separation=3.0,
        flip_rate=0.02, noise_std=0.1,
    )
    rng = np.random.default_rng(7)
    table, labels, _true_weights = generate_dataset(schema, 600, rng)
    encoder = TabularEncoder()
    x = encoder.fit_transform(table)
    train, test = np.arange(0, 480), np.arange(480, 600)

    print(f"dataset: {x.shape[0]} samples x {x.shape[1]} features\n")
    for name, regularizer in [
        ("no regularization", None),
        ("L2 (strength 10)", L2Regularizer(10.0)),
        ("adaptive GM", GMRegularizer(n_dimensions=x.shape[1])),
    ]:
        model = LogisticRegression(
            x.shape[1], regularizer=regularizer, rng=np.random.default_rng(0)
        )
        trainer = Trainer(model, lr=0.5, batch_size=32)
        trainer.fit(x[train], labels[train], epochs=120,
                    rng=np.random.default_rng(1))
        acc = accuracy(labels[test], model.predict(x[test]))
        print(f"{name:20s} test accuracy = {acc:.3f}")
        if isinstance(regularizer, GMRegularizer):
            mixture = regularizer.mixture
            print(
                f"\nlearned GM: pi={np.round(mixture.pi, 3)}, "
                f"lambda={np.round(mixture.lam, 3)} "
                f"({mixture.effective_components()} effective components)"
            )
            print(
                "  -> the high-precision component regularizes the noisy "
                "features strongly;\n     the low-precision one leaves the "
                "predictive features almost free."
            )


if __name__ == "__main__":
    main()
